//! Fiduccia–Mattheyses (FM) boundary refinement.
//!
//! Classic single-vertex-move refinement with rollback to the best prefix:
//! every vertex may move once per pass; the pass keeps the move sequence
//! prefix with the smallest cut among balanced states (or the most balanced
//! state if balance has not been reached yet), then rolls the rest back.

use chiplet_graph::cut::{Bipartition, Side};

use crate::coarsen::WeightedGraph;

/// Tunables for a refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineParams {
    /// Maximum number of full FM passes (each pass is `O(V·deg)` with the
    /// simple scan-based selection used here).
    pub max_passes: usize,
    /// Maximum tolerated weight imbalance `| w(A) − w(B) |`.
    pub weight_tolerance: u64,
}

impl RefineParams {
    /// Sensible defaults for a hierarchy level: tolerance equal to the
    /// heaviest vertex (perfect balance may be unreachable at coarse levels)
    /// but never below the parity of the total weight.
    #[must_use]
    pub fn for_level(g: &WeightedGraph) -> Self {
        let max_vertex = (0..g.num_vertices()).map(|v| g.vertex_weight(v)).max().unwrap_or(0);
        let parity = g.total_weight() % 2;
        Self { max_passes: 8, weight_tolerance: max_vertex.max(parity) }
    }

    /// Strict finest-level parameters: imbalance at most the parity of the
    /// vertex count (0 for even, 1 for odd).
    #[must_use]
    pub fn strict(g: &WeightedGraph) -> Self {
        Self { max_passes: 8, weight_tolerance: g.total_weight() % 2 }
    }
}

/// Runs FM passes until no pass improves the cut or balance, or
/// [`RefineParams::max_passes`] is reached. Mutates `partition` in place.
pub fn refine(g: &WeightedGraph, partition: &mut Bipartition, params: RefineParams) {
    for _ in 0..params.max_passes {
        if !fm_pass(g, partition, params.weight_tolerance) {
            break;
        }
    }
}

/// State snapshot quality: ordered so that smaller is better.
/// Balanced states always beat unbalanced ones; within a class, lower cut
/// (or lower imbalance) wins.
fn quality(imbalance: u64, cut: i64, tolerance: u64) -> (u8, i64, u64) {
    if imbalance <= tolerance {
        (0, cut, imbalance)
    } else {
        (1, imbalance as i64, cut as u64)
    }
}

/// One FM pass. Returns `true` if the pass strictly improved the
/// (balance, cut) quality.
fn fm_pass(g: &WeightedGraph, partition: &mut Bipartition, tolerance: u64) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return false;
    }

    // Weighted side totals and per-vertex gains.
    let mut weight = [0u64; 2];
    for v in 0..n {
        weight[side_index(partition.side(v))] += g.vertex_weight(v);
    }
    let mut gain: Vec<i64> = (0..n)
        .map(|v| {
            let mut external = 0i64;
            let mut internal = 0i64;
            for &(u, w) in g.weighted_neighbors(v) {
                if partition.side(u) == partition.side(v) {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            external - internal
        })
        .collect();

    let mut cut: i64 = {
        let mut total = 0i64;
        for v in 0..n {
            for &(u, w) in g.weighted_neighbors(v) {
                if u > v && partition.side(u) != partition.side(v) {
                    total += w as i64;
                }
            }
        }
        total
    };

    let imbalance = weight[0].abs_diff(weight[1]);
    let initial_quality = quality(imbalance, cut, tolerance);

    // During the pass, moves may transiently unbalance the partition by up
    // to one vertex move in each direction (classic FM); the best-prefix
    // selection below still judges states by the strict tolerance.
    let max_vertex_weight = (0..n).map(|v| g.vertex_weight(v)).max().unwrap_or(0);
    let transient_tolerance = tolerance + 2 * max_vertex_weight;

    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::with_capacity(n);
    let mut best_prefix: usize = 0; // number of moves kept
    let mut best_quality = initial_quality;

    for _ in 0..n {
        // Pick the best admissible move: highest gain among unlocked
        // vertices whose move keeps or restores balance.
        let current_imbalance = weight[0].abs_diff(weight[1]);
        let mut chosen: Option<(usize, i64)> = None;
        for v in 0..n {
            if locked[v] {
                continue;
            }
            let from = side_index(partition.side(v));
            let wv = g.vertex_weight(v);
            let new_imbalance = (weight[from] - wv).abs_diff(weight[1 - from] + wv);
            let admissible =
                new_imbalance <= transient_tolerance || new_imbalance < current_imbalance;
            if !admissible {
                continue;
            }
            if chosen.is_none_or(|(_, bg)| gain[v] > bg) {
                chosen = Some((v, gain[v]));
            }
        }
        let Some((v, gv)) = chosen else { break };

        // Apply the move.
        let from = side_index(partition.side(v));
        weight[from] -= g.vertex_weight(v);
        weight[1 - from] += g.vertex_weight(v);
        partition.flip(v);
        cut -= gv;
        locked[v] = true;
        gain[v] = -gain[v];
        for &(u, w) in g.weighted_neighbors(v) {
            if partition.side(u) == partition.side(v) {
                // Edge became internal.
                gain[u] -= 2 * w as i64;
            } else {
                // Edge became external.
                gain[u] += 2 * w as i64;
            }
        }
        moves.push(v);

        let q = quality(weight[0].abs_diff(weight[1]), cut, tolerance);
        if q < best_quality {
            best_quality = q;
            best_prefix = moves.len();
        }
    }

    // Roll back every move after the best prefix.
    for &v in moves.iter().skip(best_prefix).rev() {
        partition.flip(v);
    }

    best_quality < initial_quality
}

fn side_index(side: Side) -> usize {
    match side {
        Side::A => 0,
        Side::B => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    fn unit(g: &chiplet_graph::Graph) -> WeightedGraph {
        WeightedGraph::from_graph(g)
    }

    #[test]
    fn refine_improves_bad_grid_split() {
        // Horizontal stripes interleaved: a terrible cut for a 4x4 grid.
        let base = gen::grid(4, 4);
        let g = unit(&base);
        let mut p =
            Bipartition::from_side_of(16, |v| if (v / 4) % 2 == 0 { Side::A } else { Side::B });
        let before = p.cut_size(&base);
        refine(&g, &mut p, RefineParams::strict(&g));
        let after = p.cut_size(&base);
        assert!(after < before, "{after} !< {before}");
        // Single-start FM may stop in a local optimum; global optimality (4)
        // is the job of the restarted multilevel driver, tested in lib.rs.
        assert!(after <= 6, "cut {after} worse than expected local optimum");
        assert!(p.is_balanced(0));
    }

    #[test]
    fn refine_preserves_optimal_partition() {
        let base = gen::grid(4, 4);
        let g = unit(&base);
        let mut p =
            Bipartition::from_side_of(16, |v| if v % 4 < 2 { Side::A } else { Side::B });
        assert_eq!(p.cut_size(&base), 4);
        refine(&g, &mut p, RefineParams::strict(&g));
        assert_eq!(p.cut_size(&base), 4);
        assert!(p.is_balanced(0));
    }

    #[test]
    fn refine_restores_balance() {
        // Start from a wildly unbalanced partition; strict refine must end
        // balanced.
        let base = gen::cycle(10);
        let g = unit(&base);
        let mut p = Bipartition::from_side_of(10, |v| if v == 0 { Side::A } else { Side::B });
        refine(&g, &mut p, RefineParams::strict(&g));
        assert!(p.is_balanced(0), "imbalance {}", p.imbalance());
        assert_eq!(p.cut_size(&base), 2);
    }

    #[test]
    fn refine_on_weighted_graph_respects_tolerance() {
        // Path of three vertices with weights 3,1,3: perfect balance is
        // impossible; tolerance from for_level is max weight = 3.
        let g = WeightedGraph::new(
            vec![3, 1, 3],
            vec![vec![(1, 1)], vec![(0, 1), (2, 1)], vec![(1, 1)]],
        );
        let mut p = Bipartition::from_side_of(3, |_| Side::A);
        refine(&g, &mut p, RefineParams::for_level(&g));
        let wa: u64 = p.vertices_on(Side::A).iter().map(|&v| g.vertex_weight(v)).sum();
        let wb = g.total_weight() - wa;
        assert!(wa.abs_diff(wb) <= 3);
    }

    #[test]
    fn refine_empty_graph_is_noop() {
        let g = WeightedGraph::from_graph(&chiplet_graph::GraphBuilder::new(0).build());
        let mut p = Bipartition::from_sides(Vec::new());
        refine(&g, &mut p, RefineParams { max_passes: 4, weight_tolerance: 0 });
        assert!(p.is_empty());
    }

    #[test]
    fn strict_params_parity() {
        let even = unit(&gen::cycle(6));
        assert_eq!(RefineParams::strict(&even).weight_tolerance, 0);
        let odd = unit(&gen::cycle(7));
        assert_eq!(RefineParams::strict(&odd).weight_tolerance, 1);
    }
}
