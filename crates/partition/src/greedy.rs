//! Greedy graph-growing initial partitioning (METIS's GGP).
//!
//! Starting from a random seed vertex, grow region `A` by repeatedly
//! absorbing the frontier vertex whose move increases the cut least, until
//! `A` holds half the total vertex weight. Simple, fast, and good enough as
//! the starting point for FM refinement.

use chiplet_graph::cut::{Bipartition, Side};
use rand::rngs::StdRng;
use rand::Rng;

use crate::coarsen::WeightedGraph;

/// Grows a roughly half-weight region from a random seed and returns the
/// resulting bipartition (`A` = grown region, `B` = the rest).
///
/// The target is `total_weight / 2` (rounded down); growth stops as soon as
/// adding the next vertex would overshoot further than stopping short, which
/// keeps the partition as balanced as vertex granularity allows.
pub fn grow_partition(g: &WeightedGraph, rng: &mut StdRng) -> Bipartition {
    let n = g.num_vertices();
    if n == 0 {
        return Bipartition::from_sides(Vec::new());
    }
    let total = g.total_weight();
    let target = total / 2;

    let mut in_a = vec![false; n];
    let seed = rng.gen_range(0..n);
    in_a[seed] = true;
    let mut weight_a = g.vertex_weight(seed);

    // gain[v] = (edge weight to A) - (edge weight to B): absorbing a vertex
    // with high gain moves cut edges inside A.
    while weight_a < target {
        let mut best: Option<(usize, i64)> = None;
        for v in 0..n {
            if in_a[v] {
                continue;
            }
            let mut to_a: i64 = 0;
            let mut to_b: i64 = 0;
            let mut frontier = false;
            for &(u, w) in g.weighted_neighbors(v) {
                if in_a[u] {
                    to_a += w as i64;
                    frontier = true;
                } else {
                    to_b += w as i64;
                }
            }
            if !frontier {
                continue;
            }
            let gain = to_a - to_b;
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((v, gain));
            }
        }
        // Disconnected graph: frontier may be empty before reaching the
        // target; jump to a random vertex of the other component.
        let next = match best {
            Some((v, _)) => v,
            None => {
                let candidates: Vec<usize> = (0..n).filter(|&v| !in_a[v]).collect();
                match candidates.as_slice() {
                    [] => break,
                    cs => cs[rng.gen_range(0..cs.len())],
                }
            }
        };
        let next_weight = g.vertex_weight(next);
        // Stop if overshooting hurts balance more than stopping here.
        if weight_a + next_weight > target {
            let undershoot = target - weight_a;
            let overshoot = weight_a + next_weight - target;
            if overshoot > undershoot {
                break;
            }
        }
        in_a[next] = true;
        weight_a += next_weight;
    }

    Bipartition::from_side_of(n, |v| if in_a[v] { Side::A } else { Side::B })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn empty_graph_yields_empty_partition() {
        let g = WeightedGraph::from_graph(&chiplet_graph::GraphBuilder::new(0).build());
        let p = grow_partition(&g, &mut rng(1));
        assert!(p.is_empty());
    }

    #[test]
    fn grown_partition_is_roughly_balanced() {
        for seed in 0..10 {
            let g = WeightedGraph::from_graph(&gen::grid(6, 6));
            let p = grow_partition(&g, &mut rng(seed));
            let (a, b) = p.sizes();
            assert!(a.abs_diff(b) <= 2, "seed {seed}: sizes {a}/{b}");
        }
    }

    #[test]
    fn grown_region_is_contiguous_on_connected_graph() {
        let base = gen::grid(5, 5);
        let g = WeightedGraph::from_graph(&base);
        let p = grow_partition(&g, &mut rng(3));
        // All side-A vertices reachable from each other within side A.
        let a: Vec<usize> = p.vertices_on(Side::A);
        assert!(!a.is_empty());
        let sub_edges: Vec<(usize, usize)> = base
            .edges()
            .filter(|&(u, v)| p.side(u) == Side::A && p.side(v) == Side::A)
            .map(|(u, v)| (a.binary_search(&u).unwrap(), a.binary_search(&v).unwrap()))
            .collect();
        let sub = chiplet_graph::Graph::from_edges(a.len(), &sub_edges).unwrap();
        assert!(chiplet_graph::metrics::is_connected(&sub));
    }

    #[test]
    fn handles_disconnected_graphs() {
        let base = chiplet_graph::Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let g = WeightedGraph::from_graph(&base);
        let p = grow_partition(&g, &mut rng(9));
        let (a, b) = p.sizes();
        assert_eq!(a + b, 6);
        assert!(a.abs_diff(b) <= 2);
    }

    #[test]
    fn respects_vertex_weights() {
        // Two heavy vertices and four light ones in a path; target half-weight
        // split should not lump both heavy vertices on one side with all the
        // light ones.
        let g = WeightedGraph::new(
            vec![4, 1, 1, 1, 1, 4],
            vec![
                vec![(1, 1)],
                vec![(0, 1), (2, 1)],
                vec![(1, 1), (3, 1)],
                vec![(2, 1), (4, 1)],
                vec![(3, 1), (5, 1)],
                vec![(4, 1)],
            ],
        );
        let p = grow_partition(&g, &mut rng(11));
        let weight_a: u64 = p.vertices_on(Side::A).iter().map(|&v| g.vertex_weight(v)).sum();
        let total = g.total_weight();
        assert!(weight_a.abs_diff(total - weight_a) <= 4);
    }
}
