//! Balanced k-way partitioning.
//!
//! METIS's headline feature is k-way partitioning; the paper only needs
//! 2-way cuts, but a k-way partitioner makes the substitute complete and
//! enables mapping experiments (e.g. assigning k workloads to chiplet
//! regions). The algorithm is seed-and-grow with boundary refinement:
//!
//! 1. **Seeding**: k seeds chosen farthest-first (each next seed maximises
//!    its BFS distance to the already-chosen ones);
//! 2. **Growing**: multi-source BFS assigns each vertex to the nearest
//!    seed's part, subject to a per-part size cap `⌈n/k⌉`;
//! 3. **Refinement**: greedy boundary moves that reduce the edge cut while
//!    keeping all parts within the balance band.

use chiplet_graph::{bfs, Graph};
use std::collections::VecDeque;
use std::fmt;

/// Errors from k-way partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KwayError {
    /// `k` must be at least 1.
    ZeroParts,
    /// More parts than vertices.
    TooManyParts {
        /// Requested part count.
        k: usize,
        /// Available vertices.
        n: usize,
    },
}

impl fmt::Display for KwayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KwayError::ZeroParts => write!(f, "cannot partition into zero parts"),
            KwayError::TooManyParts { k, n } => {
                write!(f, "cannot split {n} vertices into {k} parts")
            }
        }
    }
}

impl std::error::Error for KwayError {}

/// A k-way assignment: `parts[v]` is the part id of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KwayPartition {
    parts: Vec<usize>,
    k: usize,
}

impl KwayPartition {
    /// Part id of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn part(&self, v: usize) -> usize {
        self.parts[v]
    }

    /// Per-vertex part ids.
    #[must_use]
    pub fn parts(&self) -> &[usize] {
        &self.parts
    }

    /// Number of parts.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Vertices per part.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.parts {
            sizes[p] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints lie in different parts.
    #[must_use]
    pub fn edge_cut(&self, g: &Graph) -> usize {
        g.edges().filter(|&(u, v)| self.parts[u] != self.parts[v]).count()
    }

    /// `true` if every part holds between `⌊n/k⌋ − tolerance` and
    /// `⌈n/k⌉ + tolerance` vertices.
    #[must_use]
    pub fn is_balanced(&self, tolerance: usize) -> bool {
        let n = self.parts.len();
        let lo = (n / self.k).saturating_sub(tolerance);
        let hi = n.div_ceil(self.k) + tolerance;
        self.sizes().iter().all(|&s| (lo..=hi).contains(&s))
    }
}

/// Partitions `g` into `k` balanced parts, minimising the edge cut
/// greedily.
///
/// # Errors
///
/// * [`KwayError::ZeroParts`] if `k == 0`;
/// * [`KwayError::TooManyParts`] if `k > g.num_vertices()`.
///
/// # Example
///
/// ```
/// use chiplet_graph::gen;
/// use chiplet_partition::partition_kway;
///
/// // Four balanced regions of a 4x4 chiplet grid.
/// let p = partition_kway(&gen::grid(4, 4), 4)?;
/// assert!(p.is_balanced(0));
/// assert_eq!(p.sizes(), vec![4, 4, 4, 4]);
/// # Ok::<(), chiplet_partition::KwayError>(())
/// ```
pub fn partition_kway(g: &Graph, k: usize) -> Result<KwayPartition, KwayError> {
    let n = g.num_vertices();
    if k == 0 {
        return Err(KwayError::ZeroParts);
    }
    if k > n {
        return Err(KwayError::TooManyParts { k, n });
    }
    if k == 1 {
        return Ok(KwayPartition { parts: vec![0; n], k });
    }

    let seeds = farthest_first_seeds(g, k);
    let mut parts = grow_from_seeds(g, &seeds, k);
    rebalance(g, &mut parts, k);
    refine(g, &mut parts, k);
    Ok(KwayPartition { parts, k })
}

/// Farthest-first traversal: seed 0 is a pseudo-peripheral vertex; every
/// next seed maximises its BFS distance to the chosen set (unreachable
/// vertices count as infinitely far, so each component gets seeds first).
fn farthest_first_seeds(g: &Graph, k: usize) -> Vec<usize> {
    let n = g.num_vertices();
    // Pseudo-peripheral start: BFS twice from vertex 0.
    let d0 = bfs::distances(g, 0);
    let start = (0..n).max_by_key(|&v| if d0[v] == u32::MAX { 0 } else { d0[v] }).unwrap_or(0);
    let mut seeds = vec![start];
    let mut min_dist: Vec<u64> = bfs::distances(g, start)
        .into_iter()
        .map(|d| if d == u32::MAX { u64::MAX } else { u64::from(d) })
        .collect();
    while seeds.len() < k {
        let next = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| min_dist[v])
            .expect("k <= n leaves a candidate");
        seeds.push(next);
        for (v, d) in bfs::distances(g, next).into_iter().enumerate() {
            let d = if d == u32::MAX { u64::MAX } else { u64::from(d) };
            min_dist[v] = min_dist[v].min(d);
        }
    }
    seeds
}

/// Multi-source BFS growth with per-part caps.
fn grow_from_seeds(g: &Graph, seeds: &[usize], k: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let cap = n.div_ceil(k);
    let mut parts = vec![usize::MAX; n];
    let mut sizes = vec![0usize; k];
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for (p, &s) in seeds.iter().enumerate() {
        if parts[s] == usize::MAX {
            parts[s] = p;
            sizes[p] += 1;
            queue.push_back((s, p));
        }
    }
    while let Some((v, p)) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if parts[u] == usize::MAX && sizes[p] < cap {
                parts[u] = p;
                sizes[p] += 1;
                queue.push_back((u, p));
            }
        }
    }
    // Strays (isolated vertices, or capped-out regions): smallest part.
    for part in parts.iter_mut().filter(|p| **p == usize::MAX) {
        let p = (0..k).min_by_key(|&p| sizes[p]).expect("k >= 1");
        *part = p;
        sizes[p] += 1;
    }
    parts
}

/// Restores the balance band after growth: BFS growth with caps can leave
/// a part under-filled (two parts hit their cap and strand the remainder).
/// While any part is below `⌊n/k⌋`, pull the friendliest vertex from the
/// currently largest part.
fn rebalance(g: &Graph, parts: &mut [usize], k: usize) {
    let n = g.num_vertices();
    let lo = n / k;
    let mut sizes = vec![0usize; k];
    for &p in parts.iter() {
        sizes[p] += 1;
    }
    while let Some(under) = (0..k).find(|&p| sizes[p] < lo) {
        let donor = (0..k).max_by_key(|&p| sizes[p]).expect("k >= 1");
        debug_assert!(donor != under && sizes[donor] > lo);
        // Prefer the donor vertex with the most neighbours already in the
        // under-filled part (and the fewest left behind).
        let v = (0..n)
            .filter(|&v| parts[v] == donor)
            .max_by_key(|&v| {
                let mut score = 0i64;
                for &u in g.neighbors(v) {
                    if parts[u] == under {
                        score += 1;
                    } else if parts[u] == donor {
                        score -= 1;
                    }
                }
                score
            })
            .expect("donor part is non-empty");
        parts[v] = under;
        sizes[donor] -= 1;
        sizes[under] += 1;
    }
}

/// Greedy boundary refinement: single moves to the adjacent part with the
/// largest cut gain while staying inside the balance band, plus
/// balance-preserving pairwise swaps (which rescue moves a single-vertex
/// balance check would block).
fn refine(g: &Graph, parts: &mut [usize], k: usize) {
    let n = g.num_vertices();
    let lo = n / k;
    let hi = n.div_ceil(k);
    let mut sizes = vec![0usize; k];
    for &p in parts.iter() {
        sizes[p] += 1;
    }
    // Cut gain of moving `v` into part `q`.
    let gain = |parts: &[usize], v: usize, q: usize| -> i64 {
        let mut external = 0i64;
        let mut internal = 0i64;
        for &u in g.neighbors(v) {
            if parts[u] == q {
                external += 1;
            } else if parts[u] == parts[v] {
                internal += 1;
            }
        }
        external - internal
    };
    for _pass in 0..12 {
        let mut improved = false;
        // Phase 1: single moves.
        for v in 0..n {
            let current = parts[v];
            if sizes[current] <= lo {
                continue; // would under-fill the current part
            }
            let candidate_parts: Vec<usize> = g
                .neighbors(v)
                .iter()
                .map(|&u| parts[u])
                .filter(|&p| p != current && sizes[p] < hi)
                .collect();
            if let Some((best_part, best_gain)) = candidate_parts
                .into_iter()
                .map(|p| (p, gain(parts, v, p)))
                .max_by_key(|&(_, gain)| gain)
            {
                if best_gain > 0 {
                    parts[v] = best_part;
                    sizes[current] -= 1;
                    sizes[best_part] += 1;
                    improved = true;
                }
            }
        }
        // Phase 2: balance-preserving swaps across part pairs.
        for u in 0..n {
            for v in (u + 1)..n {
                let (p, q) = (parts[u], parts[v]);
                if p == q {
                    continue;
                }
                let adjacent = i64::from(g.has_edge(u, v));
                // A cut edge between u and v stays cut after the swap, so
                // both per-vertex gains overcount it once.
                let swap_gain = gain(parts, u, q) + gain(parts, v, p) - 2 * adjacent;
                if swap_gain > 0 {
                    parts[u] = q;
                    parts[v] = p;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn rejects_degenerate_k() {
        let g = gen::path(4);
        assert_eq!(partition_kway(&g, 0).unwrap_err(), KwayError::ZeroParts);
        assert_eq!(partition_kway(&g, 5).unwrap_err(), KwayError::TooManyParts { k: 5, n: 4 });
    }

    #[test]
    fn one_part_is_trivial() {
        let g = gen::grid(3, 3);
        let p = partition_kway(&g, 1).unwrap();
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.sizes(), vec![9]);
    }

    #[test]
    fn path_into_k_segments() {
        // A path cut into k parts needs k − 1 cut edges; the greedy grower
        // is allowed one extra (pairwise refinement cannot always reach the
        // segment optimum — that needs 3-cycle rotations).
        let g = gen::path(12);
        for k in [2usize, 3, 4, 6] {
            let p = partition_kway(&g, k).unwrap();
            assert!(p.is_balanced(0), "k={k} sizes {:?}", p.sizes());
            assert!(p.edge_cut(&g) <= k, "k={k}: cut {}", p.edge_cut(&g));
            assert!(p.edge_cut(&g) >= k - 1, "k={k}: cut below the connectivity bound");
        }
        // The 2-way case has no such excuse.
        assert_eq!(partition_kway(&g, 2).unwrap().edge_cut(&g), 1);
    }

    #[test]
    fn grid_quadrants() {
        // A 4x4 grid into 4 parts: the quadrant optimum cuts 8 edges; allow
        // the greedy grower a 25% slack.
        let g = gen::grid(4, 4);
        let p = partition_kway(&g, 4).unwrap();
        assert!(p.is_balanced(0), "sizes {:?}", p.sizes());
        assert!(p.edge_cut(&g) <= 10, "cut {} too high", p.edge_cut(&g));
        assert!(p.edge_cut(&g) >= 8, "cut {} beats the quadrant optimum", p.edge_cut(&g));
    }

    #[test]
    fn two_way_matches_bisection_quality() {
        let g = gen::grid(6, 6);
        let kway = partition_kway(&g, 2).unwrap();
        let bisection = crate::bisect(&g, &crate::BisectionConfig::default()).unwrap();
        assert!(kway.is_balanced(0));
        // The simple k-way grower is allowed to trail the multilevel
        // bisection, but not by more than a couple of edges on a grid.
        assert!(
            kway.edge_cut(&g) <= bisection.cut + 3,
            "kway {} vs bisect {}",
            kway.edge_cut(&g),
            bisection.cut
        );
    }

    #[test]
    fn disconnected_components_split_cleanly() {
        // Two disjoint paths of 4: two parts, zero cut.
        let g = chiplet_graph::Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)],
        )
        .unwrap();
        let p = partition_kway(&g, 2).unwrap();
        assert!(p.is_balanced(0));
        assert_eq!(p.edge_cut(&g), 0, "parts {:?}", p.parts());
    }

    #[test]
    fn all_parts_nonempty_even_with_isolated_vertices() {
        let g = chiplet_graph::GraphBuilder::new(6).build(); // no edges at all
        let p = partition_kway(&g, 3).unwrap();
        assert!(p.is_balanced(0), "sizes {:?}", p.sizes());
        assert!(p.sizes().iter().all(|&s| s == 2));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let g = gen::cycle(5);
        let p = partition_kway(&g, 5).unwrap();
        assert_eq!(p.sizes(), vec![1; 5]);
        assert_eq!(p.edge_cut(&g), 5); // every cycle edge is cut
    }
}
