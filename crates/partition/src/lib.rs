//! Balanced graph bisection — the workspace's METIS substitute.
//!
//! The HexaMesh paper estimates the **bisection bandwidth** of semi-regular
//! and irregular chiplet arrangements with METIS [Karypis & Kumar 1997]. This
//! crate re-implements the relevant slice of that functionality from scratch:
//! finding a minimum *balanced* 2-way cut of a small unweighted graph.
//!
//! The algorithm family matches METIS:
//!
//! 1. **Coarsening** by heavy-edge matching ([`coarsen`]),
//! 2. **Initial partitioning** of the coarsest graph by greedy region growing
//!    ([`greedy`]),
//! 3. **Uncoarsening** with Fiduccia–Mattheyses boundary refinement at every
//!    level ([`fm`]),
//! 4. randomised **restarts**, keeping the best balanced cut.
//!
//! For small graphs an **exact** enumeration ([`exact`]) is used instead, and
//! doubles as the ground truth in this crate's tests. At the paper's scale
//! (≤ 100 chiplets) the heuristic is exact or near-exact, which we verify
//! against closed-form cuts of regular arrangements.
//!
//! # Example
//!
//! ```
//! use chiplet_graph::gen;
//! use chiplet_partition::{bisect, BisectionConfig};
//!
//! let g = gen::grid(4, 4);
//! let result = bisect(&g, &BisectionConfig::default())?;
//! assert_eq!(result.cut, 4); // B_G(16) = sqrt(16)
//! assert!(result.partition.is_balanced(0));
//! # Ok::<(), chiplet_partition::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod exact;
pub mod fm;
pub mod greedy;
pub mod kway;
pub mod spectral;

use chiplet_graph::cut::Bipartition;
use chiplet_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use coarsen::WeightedGraph;
pub use kway::{partition_kway, KwayError, KwayPartition};
pub use spectral::{fiedler_vector, spectral_bisection, SpectralConfig};

/// Errors produced by the bisection search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionError {
    /// The graph has no vertices, so no bisection exists.
    EmptyGraph,
    /// The search could not produce a partition within the balance
    /// tolerance (should not happen for any graph with ≥ 1 vertex; kept for
    /// defensive completeness).
    NoBalancedPartition,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::EmptyGraph => write!(f, "cannot bisect an empty graph"),
            PartitionError::NoBalancedPartition => {
                write!(f, "no balanced partition found within tolerance")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Which algorithm produced a [`BisectionResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Exhaustive enumeration of balanced parts (optimal).
    Exact,
    /// Multilevel heuristic (coarsen → grow → FM refine, with restarts).
    Multilevel,
    /// Median split of the Fiedler-vector embedding ([`spectral`]).
    Spectral,
}

/// Tunables for [`bisect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BisectionConfig {
    /// Number of independent multilevel restarts; the best cut wins.
    pub restarts: usize,
    /// RNG seed, so results are reproducible run to run.
    pub seed: u64,
    /// Stop coarsening once a level has at most this many vertices.
    pub coarsen_to: usize,
    /// Use exact enumeration when `num_vertices ≤ exact_threshold`.
    /// Enumeration cost grows as `C(n-1, n/2)`; 20 keeps it well under a
    /// second.
    pub exact_threshold: usize,
}

impl Default for BisectionConfig {
    fn default() -> Self {
        Self { restarts: 12, seed: 0x4845_5841_4d45_5348, coarsen_to: 12, exact_threshold: 20 }
    }
}

/// Outcome of a bisection search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectionResult {
    /// The balanced bipartition found.
    pub partition: Bipartition,
    /// Number of edges crossing the cut — the bisection-bandwidth proxy.
    pub cut: usize,
    /// Which algorithm produced it.
    pub method: Method,
}

/// Balance tolerance used for bisection: perfect balance for even vertex
/// counts, one vertex of slack for odd ones.
#[must_use]
pub fn balance_tolerance(num_vertices: usize) -> usize {
    num_vertices % 2
}

/// Finds a minimum (or near-minimum) balanced 2-way cut of `g`.
///
/// Uses exact enumeration for graphs up to
/// [`BisectionConfig::exact_threshold`] vertices and the multilevel heuristic
/// above that.
///
/// # Errors
///
/// [`PartitionError::EmptyGraph`] if `g` has no vertices.
pub fn bisect(g: &Graph, config: &BisectionConfig) -> Result<BisectionResult, PartitionError> {
    let n = g.num_vertices();
    if n == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if n <= config.exact_threshold {
        let (partition, cut) = exact::exact_bisection(g);
        return Ok(BisectionResult { partition, cut, method: Method::Exact });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tolerance = balance_tolerance(n);
    let mut best: Option<(Bipartition, usize)> = None;
    for _ in 0..config.restarts.max(1) {
        let candidate = multilevel_once(g, config, &mut rng);
        if !candidate.is_balanced(tolerance) {
            continue;
        }
        let cut = candidate.cut_size(g);
        if best.as_ref().is_none_or(|(_, c)| cut < *c) {
            best = Some((candidate, cut));
        }
    }
    let (partition, cut) = best.ok_or(PartitionError::NoBalancedPartition)?;
    Ok(BisectionResult { partition, cut, method: Method::Multilevel })
}

/// Convenience wrapper: the bisection width of `g` with default settings, or
/// `None` for the empty graph.
///
/// # Example
///
/// ```
/// use chiplet_graph::gen;
///
/// let width = chiplet_partition::bisection_width(&gen::grid(6, 6));
/// assert_eq!(width, Some(6));
/// ```
#[must_use]
pub fn bisection_width(g: &Graph) -> Option<usize> {
    bisect(g, &BisectionConfig::default()).ok().map(|r| r.cut)
}

/// One multilevel V-cycle: coarsen, partition the coarsest level, project
/// back up refining at every level.
fn multilevel_once(g: &Graph, config: &BisectionConfig, rng: &mut StdRng) -> Bipartition {
    // Build the coarsening hierarchy.
    let mut levels: Vec<WeightedGraph> = vec![WeightedGraph::from_graph(g)];
    let mut mappings: Vec<Vec<usize>> = Vec::new();
    while levels.last().expect("non-empty").num_vertices() > config.coarsen_to {
        let current = levels.last().expect("non-empty");
        let Some((coarser, mapping)) = coarsen::coarsen_step(current, rng) else {
            break; // no further contraction possible
        };
        levels.push(coarser);
        mappings.push(mapping);
    }

    // Partition the coarsest graph by greedy growing + FM.
    let coarsest = levels.last().expect("non-empty");
    let mut partition = greedy::grow_partition(coarsest, rng);
    fm::refine(coarsest, &mut partition, fm::RefineParams::for_level(coarsest));

    // Project back to finer levels, refining after each projection.
    for level_idx in (0..mappings.len()).rev() {
        let finer = &levels[level_idx];
        let mapping = &mappings[level_idx];
        partition =
            Bipartition::from_side_of(finer.num_vertices(), |v| partition.side(mapping[v]));
        fm::refine(finer, &mut partition, fm::RefineParams::for_level(finer));
    }
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn empty_graph_is_an_error() {
        let g = chiplet_graph::GraphBuilder::new(0).build();
        assert_eq!(
            bisect(&g, &BisectionConfig::default()).unwrap_err(),
            PartitionError::EmptyGraph
        );
        assert_eq!(bisection_width(&g), None);
    }

    #[test]
    fn singleton_graph_has_zero_cut() {
        let g = chiplet_graph::GraphBuilder::new(1).build();
        let r = bisect(&g, &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 0);
        assert!(r.partition.is_balanced(1));
    }

    #[test]
    fn two_vertices_connected() {
        let g = gen::path(2);
        let r = bisect(&g, &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 1);
        assert!(r.partition.is_balanced(0));
    }

    #[test]
    fn even_cycle_cut_is_two() {
        let r = bisect(&gen::cycle(12), &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 2);
    }

    #[test]
    fn small_grids_match_formula_exactly() {
        // B_G = sqrt(N) for even-sided regular grids (exact path).
        for k in [2usize, 4] {
            let g = gen::grid(k, k);
            let r = bisect(&g, &BisectionConfig::default()).unwrap();
            assert_eq!(r.method, Method::Exact);
            assert_eq!(r.cut, k, "grid {k}x{k}");
        }
    }

    #[test]
    fn large_grids_match_formula_heuristically() {
        for k in [6usize, 8, 10] {
            let g = gen::grid(k, k);
            let r = bisect(&g, &BisectionConfig::default()).unwrap();
            assert_eq!(r.method, Method::Multilevel);
            assert_eq!(r.cut, k, "grid {k}x{k}");
            assert!(r.partition.is_balanced(0));
        }
    }

    #[test]
    fn complete_graph_cut() {
        // Balanced cut of K_n has (n/2)*(n/2) crossing edges for even n.
        let r = bisect(&gen::complete(8), &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 16);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        // Two disjoint K_4s: split by component.
        let mut edges = Vec::new();
        for base in [0usize, 4] {
            for u in 0..4 {
                for v in (u + 1)..4 {
                    edges.push((base + u, base + v));
                }
            }
        }
        let g = Graph::from_edges(8, &edges).unwrap();
        let r = bisect(&g, &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 0);
        assert!(r.partition.is_balanced(0));
    }

    #[test]
    fn odd_vertex_count_allows_one_slack() {
        let r = bisect(&gen::cycle(9), &BisectionConfig::default()).unwrap();
        assert_eq!(r.cut, 2);
        assert!(r.partition.is_balanced(1));
        assert!(!r.partition.is_balanced(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::grid(7, 9);
        let cfg = BisectionConfig { exact_threshold: 8, ..BisectionConfig::default() };
        let a = bisect(&g, &cfg).unwrap();
        let b = bisect(&g, &cfg).unwrap();
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.partition, b.partition);
    }
}
