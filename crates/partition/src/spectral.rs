//! Spectral bisection via the Fiedler vector.
//!
//! The classic alternative to combinatorial multilevel partitioning: the
//! eigenvector of the graph Laplacian `L = D − A` for its second-smallest
//! eigenvalue (the *Fiedler vector*) embeds the graph on a line so that a
//! median split yields a provably good balanced cut for many graph
//! families. METIS offers the same option; here it cross-checks the
//! multilevel heuristic — two independent algorithms agreeing on the cut is
//! strong evidence both are right.
//!
//! The Fiedler vector is computed by power iteration on the spectral
//! complement `M = c·I − L` (with `c ≥ λ_max(L)`, so the smallest Laplacian
//! eigenvalues become the largest of `M`), deflating the constant
//! eigenvector by re-orthogonalisation every step.

use chiplet_graph::cut::Bipartition;
use chiplet_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{balance_tolerance, BisectionResult, Method, PartitionError};

/// Tunables for the spectral solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// Power-iteration cap.
    pub max_iterations: usize,
    /// Convergence threshold on the iterate change (2-norm).
    pub tolerance: f64,
    /// RNG seed for the starting vector.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self { max_iterations: 10_000, tolerance: 1e-10, seed: 0x0F1E_D1E2 }
    }
}

/// Computes the Fiedler vector of `g` (unit 2-norm, sign-normalised so the
/// first nonzero entry is positive). Returns `None` for graphs with fewer
/// than two vertices.
#[must_use]
pub fn fiedler_vector(g: &Graph, config: &SpectralConfig) -> Option<Vec<f64>> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    let max_degree = (0..n).map(|v| g.degree(v)).max().unwrap_or(0) as f64;
    // c ≥ λ_max(L); λ_max ≤ 2·d_max (Gershgorin).
    let c = 2.0 * max_degree + 1.0;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    orthogonalise_to_constant(&mut v);
    normalise(&mut v);

    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iterations {
        // next = (c·I − L)·v = c·v − D·v + A·v
        for u in 0..n {
            let mut acc = (c - g.degree(u) as f64) * v[u];
            for &w in g.neighbors(u) {
                acc += v[w];
            }
            next[u] = acc;
        }
        orthogonalise_to_constant(&mut next);
        normalise(&mut next);
        let delta: f64 = v
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            // Sign flips between iterations are convergence too.
            .min(v.iter().zip(&next).map(|(a, b)| (a + b) * (a + b)).sum::<f64>().sqrt());
        std::mem::swap(&mut v, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    // Sign normalisation for reproducibility.
    if let Some(first) = v.iter().find(|x| x.abs() > 1e-12) {
        if *first < 0.0 {
            for x in &mut v {
                *x = -*x;
            }
        }
    }
    Some(v)
}

/// Spectral bisection: median split of the Fiedler embedding.
///
/// # Errors
///
/// [`PartitionError::EmptyGraph`] for an empty graph.
///
/// # Example
///
/// ```
/// use chiplet_graph::gen;
/// use chiplet_partition::{spectral_bisection, SpectralConfig};
///
/// // A path graph splits at its middle edge.
/// let r = spectral_bisection(&gen::path(10), &SpectralConfig::default())?;
/// assert_eq!(r.cut, 1);
/// # Ok::<(), chiplet_partition::PartitionError>(())
/// ```
pub fn spectral_bisection(
    g: &Graph,
    config: &SpectralConfig,
) -> Result<BisectionResult, PartitionError> {
    let n = g.num_vertices();
    if n == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if n == 1 {
        let partition = Bipartition::all_a(1);
        return Ok(BisectionResult { partition, cut: 0, method: Method::Spectral });
    }
    let fiedler = fiedler_vector(g, config).expect("n >= 2");
    // Order vertices by Fiedler value; the low half goes to side A.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| fiedler[a].total_cmp(&fiedler[b]).then(a.cmp(&b)));
    let half = n / 2;
    let mut side_a = vec![false; n];
    for &v in &order[..half] {
        side_a[v] = true;
    }
    let partition = Bipartition::from_side_of(n, |v| {
        if side_a[v] {
            chiplet_graph::cut::Side::A
        } else {
            chiplet_graph::cut::Side::B
        }
    });
    debug_assert!(partition.is_balanced(balance_tolerance(n)));
    let cut = partition.cut_size(g);
    Ok(BisectionResult { partition, cut, method: Method::Spectral })
}

fn orthogonalise_to_constant(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

fn normalise(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn fiedler_of_a_path_is_monotone() {
        // For P_n the Fiedler vector is cos(π(i + ½)/n): strictly monotone
        // along the path, so the embedding recovers the line order.
        let g = gen::path(8);
        let f = fiedler_vector(&g, &SpectralConfig::default()).unwrap();
        let increasing = f.windows(2).all(|w| w[0] < w[1]);
        let decreasing = f.windows(2).all(|w| w[0] > w[1]);
        assert!(increasing || decreasing, "{f:?}");
    }

    #[test]
    fn fiedler_is_orthogonal_to_constant_and_unit() {
        let g = gen::grid(4, 4);
        let f = fiedler_vector(&g, &SpectralConfig::default()).unwrap();
        let sum: f64 = f.iter().sum();
        let norm: f64 = f.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(sum.abs() < 1e-8, "not mean-free: {sum}");
        assert!((norm - 1.0).abs() < 1e-8, "not unit norm: {norm}");
    }

    #[test]
    fn path_splits_in_the_middle() {
        let r = spectral_bisection(&gen::path(10), &SpectralConfig::default()).unwrap();
        assert_eq!(r.cut, 1);
        assert!(r.partition.is_balanced(0));
        assert_eq!(r.method, Method::Spectral);
    }

    #[test]
    fn even_cycle_cuts_two() {
        let r = spectral_bisection(&gen::cycle(12), &SpectralConfig::default()).unwrap();
        assert_eq!(r.cut, 2);
    }

    #[test]
    fn rectangular_grid_cuts_across_the_short_side() {
        // For R < C with C even, the Fiedler mode lies along the long axis
        // (its eigenvalue is smaller), so the median split is a straight
        // column cut of exactly R edges. (Odd vertex counts force jagged
        // cuts and are excluded.)
        for (rows, cols) in [(4usize, 6usize), (3, 8), (4, 10)] {
            let r =
                spectral_bisection(&gen::grid(rows, cols), &SpectralConfig::default()).unwrap();
            assert_eq!(r.cut, rows, "grid {rows}x{cols}");
            assert!(r.partition.is_balanced((rows * cols) % 2));
        }
    }

    #[test]
    fn square_grid_cut_is_near_optimal_despite_degeneracy() {
        // Square grids have a two-fold degenerate Fiedler eigenvalue (the x
        // and y modes tie), so power iteration converges to an arbitrary
        // mixture whose median split can be a diagonal-ish cut — still
        // within a constant factor of the straight cut.
        for k in [4usize, 6] {
            let r = spectral_bisection(&gen::grid(k, k), &SpectralConfig::default()).unwrap();
            assert!(r.cut >= k, "grid {k}x{k}: cut {} below optimum", r.cut);
            assert!(r.cut <= 2 * k, "grid {k}x{k}: cut {} too high", r.cut);
            assert!(r.partition.is_balanced(0));
        }
    }

    #[test]
    fn barbell_cuts_the_bridge() {
        // Two K_5s joined by a single edge: the spectral split finds the
        // bridge.
        let mut edges = Vec::new();
        for base in [0usize, 5] {
            for u in 0..5 {
                for v in (u + 1)..5 {
                    edges.push((base + u, base + v));
                }
            }
        }
        edges.push((4, 5));
        let g = Graph::from_edges(10, &edges).unwrap();
        let r = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn agrees_with_multilevel_on_random_grids() {
        for (rows, cols) in [(5, 8), (6, 7), (4, 9)] {
            let g = gen::grid(rows, cols);
            let spectral = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
            let multilevel = crate::bisect(&g, &crate::BisectionConfig::default()).unwrap();
            // The spectral median split is not always optimal, but on grids
            // it must land within one row/column of the combinatorial cut.
            assert!(
                spectral.cut <= multilevel.cut + rows.min(cols),
                "{rows}x{cols}: spectral {} vs multilevel {}",
                spectral.cut,
                multilevel.cut
            );
        }
    }

    #[test]
    fn degenerate_graphs() {
        let empty = chiplet_graph::GraphBuilder::new(0).build();
        assert_eq!(
            spectral_bisection(&empty, &SpectralConfig::default()).unwrap_err(),
            PartitionError::EmptyGraph
        );
        let single = chiplet_graph::GraphBuilder::new(1).build();
        let r = spectral_bisection(&single, &SpectralConfig::default()).unwrap();
        assert_eq!(r.cut, 0);
        assert!(fiedler_vector(&single, &SpectralConfig::default()).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::grid(5, 5);
        let a = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        let b = spectral_bisection(&g, &SpectralConfig::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }
}
