//! Property tests: the multilevel heuristic against the exact optimum.

use chiplet_graph::{gen, Graph};
use chiplet_partition::{balance_tolerance, bisect, exact, BisectionConfig};
use proptest::prelude::*;

/// Random connected graph with `8..=16` vertices (small enough for exact).
fn arb_small_connected() -> impl Strategy<Value = Graph> {
    (8usize..=16).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(0u8..100, max_edges).prop_map(move |coins| {
            let mut k = 0;
            let g = gen::from_coin(n, |_, _| {
                let c = coins[k] < 25; // ~25% edge density
                k += 1;
                c
            });
            // Force connectivity with a spanning path.
            let mut edges: Vec<_> = g.edges().collect();
            for i in 1..n {
                if !g.has_edge(i - 1, i) {
                    edges.push((i - 1, i));
                }
            }
            Graph::from_edges(n, &edges).expect("still simple")
        })
    })
}

/// Heuristic configured to skip the exact path so we actually test it.
fn heuristic_config() -> BisectionConfig {
    BisectionConfig { exact_threshold: 0, restarts: 12, coarsen_to: 6, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristic_is_balanced_and_near_optimal(g in arb_small_connected()) {
        let (_, optimal) = exact::exact_bisection(&g);
        let r = bisect(&g, &heuristic_config()).expect("non-empty");
        prop_assert!(r.partition.is_balanced(balance_tolerance(g.num_vertices())));
        prop_assert!(r.cut >= optimal, "heuristic {} below optimum {}", r.cut, optimal);
        // At this scale with restarts the heuristic should be optimal or
        // within one edge of it.
        prop_assert!(r.cut <= optimal + 1, "heuristic {} vs optimum {}", r.cut, optimal);
    }

    #[test]
    fn exact_result_is_balanced(g in arb_small_connected()) {
        let n = g.num_vertices();
        let (p, cut) = exact::exact_bisection(&g);
        prop_assert!(p.is_balanced(balance_tolerance(n)));
        prop_assert_eq!(p.cut_size(&g), cut);
    }

    #[test]
    fn cut_never_exceeds_minimum_degree_sum_bound(g in arb_small_connected()) {
        // A crude upper bound: isolating the floor(n/2) lowest-degree
        // vertices cuts at most the sum of their degrees.
        let n = g.num_vertices();
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let bound: usize = degrees.iter().take(n / 2).sum();
        let (_, cut) = exact::exact_bisection(&g);
        prop_assert!(cut <= bound);
    }
}

#[test]
fn heuristic_matches_exact_on_structured_graphs() {
    // Deterministic regression set: graphs with known optimal cuts.
    let cases: Vec<(Graph, usize)> = vec![
        (gen::grid(6, 6), 6),
        (gen::grid(5, 8), 5),
        (gen::cycle(30), 2),
        (gen::complete(10), 25),
    ];
    for (g, optimal) in cases {
        let r = bisect(&g, &heuristic_config()).expect("non-empty");
        assert_eq!(r.cut, optimal, "graph with {} vertices", g.num_vertices());
    }
}

#[test]
fn wide_rectangles_cut_across_short_dimension() {
    // A 3 x 12 grid: optimal balanced cut slices the short dimension (3).
    let g = gen::grid(3, 12);
    let r = bisect(&g, &heuristic_config()).expect("non-empty");
    assert_eq!(r.cut, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spectral_is_balanced_and_within_reach_of_exact(g in arb_small_connected()) {
        let (_, optimal) = exact::exact_bisection(&g);
        let spectral = chiplet_partition::spectral_bisection(
            &g,
            &chiplet_partition::SpectralConfig::default(),
        )
        .unwrap();
        prop_assert!(spectral.partition.is_balanced(balance_tolerance(g.num_vertices())));
        prop_assert!(spectral.cut >= optimal, "spectral beat the optimum?!");
        // Spectral median splits are approximate; on dense random graphs a
        // factor-2 + slack envelope holds comfortably and still catches
        // regressions (a broken eigen-solver produces near-random cuts).
        prop_assert!(
            spectral.cut <= optimal * 2 + 4,
            "spectral {} far from optimal {}",
            spectral.cut,
            optimal
        );
    }

    #[test]
    fn kway_partitions_are_balanced_and_exhaustive(g in arb_small_connected(), k in 2usize..5) {
        let p = chiplet_partition::partition_kway(&g, k).unwrap();
        prop_assert!(p.is_balanced(0), "sizes {:?}", p.sizes());
        // Every part id in 0..k appears.
        let sizes = p.sizes();
        prop_assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
        // k = 2 must not be worse than twice the exact bisection (plus the
        // odd-count slack).
        if k == 2 {
            let (_, optimal) = exact::exact_bisection(&g);
            prop_assert!(
                p.edge_cut(&g) <= optimal * 2 + 4,
                "kway {} far from optimal {}",
                p.edge_cut(&g),
                optimal
            );
        }
    }
}
