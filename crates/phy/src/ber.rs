//! Gaussian tail mathematics for bit-error-rate estimation.
//!
//! With eye height `h` and Gaussian noise of standard deviation `σ`, the
//! sampled signal crosses the decision threshold with probability
//! `BER = Q(h / 2σ)` where `Q` is the Gaussian tail function
//! `Q(x) = ½·erfc(x/√2)`.
//!
//! BER targets of practical D2D links (1e−15 and below, per UCIe) live deep
//! in the tail where naive series lose all relative accuracy, so `erfc`
//! combines the Abramowitz–Stegun rational approximation for small
//! arguments with the asymptotic expansion for large ones, and
//! [`log10_q`] evaluates the tail in log space to avoid underflow
//! entirely.

/// Complementary error function.
///
/// Absolute error ≤ 1.5e−7 for small arguments (Abramowitz & Stegun
/// 7.1.26); *relative* error below 1e−10 in the deep tail (asymptotic
/// series), which is what BER work needs.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < ASYMPTOTIC_CROSSOVER {
        erfc_abramowitz_stegun(x)
    } else {
        // erfc(x) = exp(−x²)·S(x) / (x·√π)
        (-x * x).exp() * asymptotic_series(x) / (x * PI_SQRT)
    }
}

/// The Gaussian tail function `Q(x) = P[N(0,1) > x] = ½·erfc(x/√2)`.
#[must_use]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// `log₁₀ Q(x)`, computed in log space so arguments far beyond the f64
/// underflow point (x ≈ 38) still return finite, accurate values.
///
/// Returns `0.0`-adjacent negative values for small `x` and `−∞`-free
/// large-magnitude negatives for large `x` (e.g. `log10_q(7.94) ≈ −15`).
#[must_use]
pub fn log10_q(x: f64) -> f64 {
    let y = x / std::f64::consts::SQRT_2;
    if y < ASYMPTOTIC_CROSSOVER {
        return q_function(x).log10();
    }
    // ln Q(x) = −y² + ln S(y) − ln(2·y·√π)   with y = x/√2
    let ln_q = -y * y + asymptotic_series(y).ln() - (2.0 * y * PI_SQRT).ln();
    ln_q / std::f64::consts::LN_10
}

const ASYMPTOTIC_CROSSOVER: f64 = 2.5;
const PI_SQRT: f64 = 1.772_453_850_905_516;

/// Abramowitz & Stegun 7.1.26 rational approximation (absolute error
/// ≤ 1.5e−7), valid for `x ≥ 0`.
fn erfc_abramowitz_stegun(x: f64) -> f64 {
    const P: f64 = 0.327_591_1;
    const A: [f64; 5] =
        [0.254_829_592, -0.284_496_736, 1.421_413_741, -1.453_152_027, 1.061_405_429];
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A[0] + t * (A[1] + t * (A[2] + t * (A[3] + t * A[4]))));
    poly * (-x * x).exp()
}

/// The divergent asymptotic series `S(x) = Σ (−1)^k (2k−1)!! / (2x²)^k`,
/// truncated at its smallest term (standard optimal truncation).
fn asymptotic_series(x: f64) -> f64 {
    let inv2x2 = 1.0 / (2.0 * x * x);
    let mut sum = 1.0;
    let mut term = 1.0;
    let mut prev_mag = f64::INFINITY;
    for k in 1..=20_u32 {
        term *= -(f64::from(2 * k - 1)) * inv2x2;
        if term.abs() >= prev_mag {
            break; // series started diverging: stop at the optimal point
        }
        prev_mag = term.abs();
        sum += term;
        if term.abs() < 1e-17 * sum.abs() {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(0.5) - 0.479_500_122).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_735).abs() < 3e-7);
    }

    #[test]
    fn erfc_negative_reflection() {
        for x in [0.3, 1.1, 2.7] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
        assert!((erfc(-3.0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(5) = 1.537459794428035e-12 (reference: mpmath).
        let rel = (erfc(5.0) - 1.537_459_794_428_035e-12).abs() / 1.537e-12;
        assert!(rel < 1e-9, "relative error {rel}");
        // erfc(10) = 2.088487583762545e-45.
        let rel = (erfc(10.0) - 2.088_487_583_762_545e-45).abs() / 2.088e-45;
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn q_function_checkpoints() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        // Q(1) = 0.158655253931457.
        assert!((q_function(1.0) - 0.158_655_253_9).abs() < 1e-6);
        // The BER-1e-15 operating point of UCIe-class links: Q(7.941) ≈ 1e-15.
        let ber = q_function(7.941);
        assert!((0.5e-15..2.0e-15).contains(&ber), "{ber}");
    }

    #[test]
    fn log10_q_matches_linear_scale_where_both_work() {
        for x in [0.5, 1.5, 2.5, 4.0, 6.0, 8.0] {
            let direct = q_function(x).log10();
            let logspace = log10_q(x);
            assert!((direct - logspace).abs() < 1e-6, "x={x}: {direct} vs {logspace}");
        }
    }

    #[test]
    fn log10_q_survives_extreme_arguments() {
        // Far beyond f64 underflow of Q itself.
        let v = log10_q(50.0);
        assert!(v.is_finite());
        // ln Q ≈ −x²/2 − ln(x√(2π)): −1250/ln10 − log10(125.33) ≈ −544.9.
        assert!((v + 544.9).abs() < 0.5, "{v}");
        assert_eq!(q_function(50.0), 0.0); // the linear scale underflows
    }

    #[test]
    fn monotone_decreasing() {
        let mut last = f64::INFINITY;
        for i in 0..200 {
            let x = f64::from(i) * 0.1;
            let v = log10_q(x);
            assert!(v < last, "log10_q not decreasing at {x}");
            last = v;
        }
    }

    #[test]
    fn continuous_across_the_crossover() {
        // The A&S / asymptotic hand-off must not produce a visible seam.
        // The A&S side carries ~1.5e-7 absolute error, which at Q ≈ 4e-4
        // translates to a few 1e-4 in log10 — invisible at BER scales.
        let below = log10_q(ASYMPTOTIC_CROSSOVER * std::f64::consts::SQRT_2 - 1e-6);
        let above = log10_q(ASYMPTOTIC_CROSSOVER * std::f64::consts::SQRT_2 + 1e-6);
        assert!((below - above).abs() < 2e-3, "{below} vs {above}");
    }
}
