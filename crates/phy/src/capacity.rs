//! Capacity solvers: maximum bit rate for a length, maximum length for a
//! bit rate, and frequency derating for long links.
//!
//! These answer the question the paper's §V sidesteps by fiat ("we make the
//! operating frequency an input parameter"): *what frequency can a link of
//! this length actually sustain?* Kite-style topologies (related work \[15\])
//! trade longer links for better graph properties, which only pays off if
//! the frequency penalty of the longer wire is modelled — these solvers
//! provide that penalty.

use crate::eye::{analyze, analyze_with_modulation, Modulation, SignalBudget};
use crate::tech::Technology;

/// Relative tolerance of the bisection solvers.
const TOLERANCE: f64 = 1e-4;
/// Upper bound beyond which the search gives up (Gb/s or mm).
const SEARCH_CAP: f64 = 1_048_576.0;

/// The largest per-wire bit rate (Gb/s) a link of `length_mm` sustains at
/// the BER target, or `None` if even an arbitrarily slow link fails (e.g.
/// crosstalk alone closes the eye).
///
/// The BER is monotone in the bit rate (more loss, more ISI, more coupling
/// at higher Nyquist), so a bisection over the rate converges to the
/// feasibility boundary.
#[must_use]
pub fn max_bit_rate_gbps(
    tech: &Technology,
    budget: &SignalBudget,
    length_mm: f64,
    log10_ber_target: f64,
) -> Option<f64> {
    let feasible = |rate: f64| analyze(tech, budget, rate, length_mm).meets(log10_ber_target);
    bisect_feasibility_boundary(feasible)
}

/// The longest link (mm) that sustains `bit_rate_gbps` per wire at the BER
/// target, or `None` if even a zero-length link fails (fixed transition
/// loss plus noise already close the eye).
#[must_use]
pub fn max_length_mm(
    tech: &Technology,
    budget: &SignalBudget,
    bit_rate_gbps: f64,
    log10_ber_target: f64,
) -> Option<f64> {
    let feasible =
        |length: f64| analyze(tech, budget, bit_rate_gbps, length).meets(log10_ber_target);
    bisect_feasibility_boundary(feasible)
}

/// The bit rate a link of `length_mm` actually runs at when the design asks
/// for `requested_gbps`: the requested rate if the link sustains it, the
/// maximum sustainable rate otherwise, and `0.0` for an infeasible link.
///
/// This is the derating rule long-link topologies must pay: the §V
/// bandwidth model becomes `B = N_dw · derated_bit_rate` instead of
/// `B = N_dw · f`.
///
/// # Example
///
/// ```
/// use chiplet_phy::{capacity, SignalBudget, Technology};
///
/// let tech = Technology::silicon_interposer();
/// let budget = SignalBudget::default();
/// // Adjacent chiplets (≤ 2 mm): full rate. A 3-pitch express link: derated.
/// let near = capacity::derated_bit_rate_gbps(&tech, &budget, 1.8, 16.0, -15.0);
/// let far = capacity::derated_bit_rate_gbps(&tech, &budget, 5.4, 16.0, -15.0);
/// assert_eq!(near, 16.0);
/// assert!(far < 16.0);
/// ```
#[must_use]
pub fn derated_bit_rate_gbps(
    tech: &Technology,
    budget: &SignalBudget,
    length_mm: f64,
    requested_gbps: f64,
    log10_ber_target: f64,
) -> f64 {
    if analyze(tech, budget, requested_gbps, length_mm).meets(log10_ber_target) {
        return requested_gbps;
    }
    max_bit_rate_gbps(tech, budget, length_mm, log10_ber_target)
        .map_or(0.0, |max| max.min(requested_gbps))
}

/// The largest bit rate a link sustains under a given line modulation.
/// Returns `None` when even an arbitrarily slow link fails.
#[must_use]
pub fn max_bit_rate_with_modulation(
    tech: &Technology,
    budget: &SignalBudget,
    length_mm: f64,
    log10_ber_target: f64,
    modulation: Modulation,
) -> Option<f64> {
    let feasible = |rate: f64| {
        analyze_with_modulation(tech, budget, rate, length_mm, modulation)
            .meets(log10_ber_target)
    };
    bisect_feasibility_boundary(feasible)
}

/// Picks the modulation that sustains the higher bit rate on a link of
/// `length_mm`, returning it with that rate; `None` if neither works.
///
/// For the calibrated USR technologies this always answers NRZ — the PAM4
/// eye split (~9.5 dB) outweighs its Nyquist-halving loss savings within
/// any feasible reach, which is why UCIe and BoW are NRZ interfaces. The
/// solver exists to *demonstrate* that, and to answer differently for
/// lossier exotic channels.
#[must_use]
pub fn best_modulation(
    tech: &Technology,
    budget: &SignalBudget,
    length_mm: f64,
    log10_ber_target: f64,
) -> Option<(Modulation, f64)> {
    let candidates = [Modulation::Nrz, Modulation::Pam4];
    candidates
        .into_iter()
        .filter_map(|m| {
            max_bit_rate_with_modulation(tech, budget, length_mm, log10_ber_target, m)
                .map(|rate| (m, rate))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Finds the boundary of a monotone feasibility predicate: the largest `x`
/// with `feasible(x)`, assuming feasibility only degrades as `x` grows.
fn bisect_feasibility_boundary(feasible: impl Fn(f64) -> bool) -> Option<f64> {
    if !feasible(f64::MIN_POSITIVE) {
        return None;
    }
    // Exponential search for an infeasible upper bracket.
    let mut lo = f64::MIN_POSITIVE;
    let mut hi = 1.0;
    while feasible(hi) {
        lo = hi;
        hi *= 2.0;
        if hi > SEARCH_CAP {
            return Some(lo); // effectively unconstrained
        }
    }
    // Bisect [lo feasible, hi infeasible].
    while hi - lo > TOLERANCE * hi.max(1.0) {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BER15: f64 = -15.0;

    #[test]
    fn substrate_reach_matches_paper_envelope() {
        // "below 4 mm in general" (§V) at the 16 Gb/s operating point.
        let sub = Technology::organic_substrate();
        let reach = max_length_mm(&sub, &SignalBudget::default(), 16.0, BER15).unwrap();
        assert!((4.0..5.5).contains(&reach), "substrate reach {reach} mm");
    }

    #[test]
    fn interposer_reach_matches_ucie_limit() {
        // "≤ 2 mm" (§II, quoting UCIe) at the 16 Gb/s operating point.
        let int = Technology::silicon_interposer();
        let reach = max_length_mm(&int, &SignalBudget::default(), 16.0, BER15).unwrap();
        assert!((1.8..2.6).contains(&reach), "interposer reach {reach} mm");
    }

    #[test]
    fn max_rate_decreases_with_length() {
        let int = Technology::silicon_interposer();
        let b = SignalBudget::default();
        let mut last = f64::INFINITY;
        for l in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let r = max_bit_rate_gbps(&int, &b, l, BER15).unwrap_or(0.0);
            assert!(r < last, "rate not decreasing at {l} mm: {r} vs {last}");
            last = r;
        }
    }

    #[test]
    fn rate_and_length_solvers_are_consistent() {
        // max_length at (rate r*) and max_rate at (length ℓ*) must agree on
        // the feasibility boundary.
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let reach = max_length_mm(&sub, &b, 16.0, BER15).unwrap();
        let rate_at_reach = max_bit_rate_gbps(&sub, &b, reach, BER15).unwrap();
        let rel = (rate_at_reach - 16.0).abs() / 16.0;
        assert!(rel < 0.02, "boundary mismatch: {rate_at_reach} Gb/s at {reach} mm");
    }

    #[test]
    fn derating_returns_requested_rate_when_feasible() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        assert_eq!(derated_bit_rate_gbps(&sub, &b, 1.0, 16.0, BER15), 16.0);
    }

    #[test]
    fn derating_reduces_rate_for_long_links() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let derated = derated_bit_rate_gbps(&sub, &b, 9.0, 16.0, BER15);
        assert!(derated > 0.0 && derated < 16.0, "derated {derated}");
        // The derated operating point itself meets the target.
        assert!(analyze(&sub, &b, derated, 9.0).meets(BER15));
    }

    #[test]
    fn infeasible_link_derates_to_zero() {
        // A hopeless channel: noise sigma so large no eye survives.
        let int = Technology::silicon_interposer();
        let b = SignalBudget { rx_noise_sigma_v: 1.0, ..SignalBudget::default() };
        assert_eq!(derated_bit_rate_gbps(&int, &b, 1.0, 16.0, BER15), 0.0);
        assert_eq!(max_bit_rate_gbps(&int, &b, 1.0, BER15), None);
    }

    #[test]
    fn crosstalk_dominated_channel_cuts_reach_hard() {
        // Crank coupling to eye-consuming levels with no frequency relief:
        // reach is then set by crosstalk accumulation, far short of the
        // loss-limited reach of the healthy preset (~2 mm).
        let mut t = Technology::silicon_interposer();
        t.xtalk_coupling = 0.6;
        t.xtalk_freq_ref_ghz = 0.0; // full-strength coupling at any rate
        let b = SignalBudget::default();
        let reach = max_length_mm(&t, &b, 16.0, BER15).unwrap();
        assert!((0.1..1.2).contains(&reach), "crosstalk-limited reach {reach} mm");
    }

    #[test]
    fn lenient_targets_extend_reach() {
        let int = Technology::silicon_interposer();
        let b = SignalBudget::default();
        let strict = max_length_mm(&int, &b, 16.0, -15.0).unwrap();
        let lenient = max_length_mm(&int, &b, 16.0, -9.0).unwrap();
        assert!(lenient > strict, "lenient {lenient} vs strict {strict}");
    }

    #[test]
    fn nrz_is_the_best_modulation_for_usr_links() {
        let b = SignalBudget::default();
        for tech in [Technology::organic_substrate(), Technology::silicon_interposer()] {
            for length in [0.5, 1.5, 3.0] {
                let (m, rate) = best_modulation(&tech, &b, length, BER15)
                    .expect("short links are feasible");
                assert_eq!(m, Modulation::Nrz, "{} at {length} mm", tech.name);
                let pam4 =
                    max_bit_rate_with_modulation(&tech, &b, length, BER15, Modulation::Pam4)
                        .unwrap_or(0.0);
                assert!(rate >= pam4, "NRZ {rate} < PAM4 {pam4} at {length} mm");
            }
        }
    }

    #[test]
    fn pam4_wins_on_a_pathological_loss_dominated_channel() {
        // A channel lossy enough that halving Nyquist saves more than the
        // ~9.5 dB eye split: huge skin-effect slope, no crosstalk, quiet
        // receiver. This is no USR technology — it verifies the solver
        // answers differently when the physics do.
        let t = Technology {
            name: "pathological".into(),
            conductor_loss: 6.0,
            dielectric_loss: 0.0,
            fixed_loss_db: 0.0,
            xtalk_coupling: 0.0,
            xtalk_saturation_mm: 1.0,
            xtalk_freq_ref_ghz: 8.0,
            aggressors: 0,
        };
        let b = SignalBudget {
            rx_noise_sigma_v: 0.0005,
            isi_fraction_per_10db: 0.0,
            ..SignalBudget::default()
        };
        let (m, _) = best_modulation(&t, &b, 8.0, -12.0).expect("feasible");
        assert_eq!(m, Modulation::Pam4);
    }

    #[test]
    fn unconstrained_search_caps_gracefully() {
        // A perfect channel (no loss, no crosstalk, tiny noise) hits the
        // search cap instead of looping forever.
        let t = Technology {
            name: "ideal".into(),
            conductor_loss: 0.0,
            dielectric_loss: 0.0,
            fixed_loss_db: 0.0,
            xtalk_coupling: 0.0,
            xtalk_saturation_mm: 1.0,
            xtalk_freq_ref_ghz: 8.0,
            aggressors: 2,
        };
        let b = SignalBudget::default();
        let reach = max_length_mm(&t, &b, 16.0, BER15).unwrap();
        assert!(reach >= SEARCH_CAP / 2.0);
    }
}
