//! Crosstalk coupling between neighbouring wires of a D2D link.
//!
//! USR links run many parallel wires at minimum pitch, so far-end crosstalk
//! (FEXT) from the immediate neighbours is the dominant deterministic noise
//! source. We model the coupled amplitude ratio of a single aggressor as
//!
//! ```text
//! κ(f, ℓ) = κ₀ · (1 − e^(−ℓ/ℓ_sat)) · min(1, f/f_ref)
//! ```
//!
//! — growing with coupled length towards an asymptote `κ₀` (beyond a few
//! saturation lengths the forward-coupled wave walks off), and linearly with
//! frequency until the reference frequency. The total budgeted crosstalk
//! multiplies this by the number of aggressors.

use crate::tech::Technology;

/// Amplitude-coupling ratio of a single aggressor wire (0..1).
#[must_use]
pub fn single_aggressor_ratio(tech: &Technology, nyquist_ghz: f64, length_mm: f64) -> f64 {
    debug_assert!(nyquist_ghz >= 0.0 && length_mm >= 0.0);
    let length_term = if tech.xtalk_saturation_mm > 0.0 {
        1.0 - (-length_mm / tech.xtalk_saturation_mm).exp()
    } else {
        1.0
    };
    let freq_term = if tech.xtalk_freq_ref_ghz > 0.0 {
        (nyquist_ghz / tech.xtalk_freq_ref_ghz).min(1.0)
    } else {
        1.0
    };
    tech.xtalk_coupling * length_term * freq_term
}

/// Total worst-case crosstalk ratio: all budgeted aggressors switching
/// against the victim simultaneously, clamped to 1 (full eye closure).
#[must_use]
pub fn total_ratio(tech: &Technology, nyquist_ghz: f64, length_mm: f64) -> f64 {
    (single_aggressor_ratio(tech, nyquist_ghz, length_mm) * f64::from(tech.aggressors)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_length_and_saturates() {
        let t = Technology::silicon_interposer();
        let short = single_aggressor_ratio(&t, 8.0, 0.5);
        let medium = single_aggressor_ratio(&t, 8.0, 2.0);
        let long = single_aggressor_ratio(&t, 8.0, 20.0);
        assert!(short < medium && medium < long);
        // Saturated value approaches the asymptotic coupling.
        assert!((long - t.xtalk_coupling).abs() < 1e-4);
    }

    #[test]
    fn zero_length_couples_nothing() {
        let t = Technology::organic_substrate();
        assert_eq!(single_aggressor_ratio(&t, 8.0, 0.0), 0.0);
    }

    #[test]
    fn frequency_scaling_caps_at_reference() {
        let t = Technology::organic_substrate();
        let half = single_aggressor_ratio(&t, t.xtalk_freq_ref_ghz / 2.0, 3.0);
        let at_ref = single_aggressor_ratio(&t, t.xtalk_freq_ref_ghz, 3.0);
        let above = single_aggressor_ratio(&t, t.xtalk_freq_ref_ghz * 4.0, 3.0);
        assert!((half - at_ref / 2.0).abs() < 1e-12);
        assert_eq!(at_ref, above);
    }

    #[test]
    fn total_multiplies_by_aggressors_and_clamps() {
        let mut t = Technology::silicon_interposer();
        let single = single_aggressor_ratio(&t, 8.0, 2.0);
        assert!((total_ratio(&t, 8.0, 2.0) - 2.0 * single).abs() < 1e-12);
        t.aggressors = 1000;
        assert_eq!(total_ratio(&t, 8.0, 2.0), 1.0);
    }
}
