//! Eye-diagram budget: from channel loss and coupling to eye height and BER.
//!
//! The budget follows standard unequalized-receiver link analysis:
//!
//! 1. the transmit swing is attenuated by the channel's insertion loss;
//! 2. inter-symbol interference closes a fraction of the *received* eye
//!    proportional to the wire loss at Nyquist (a lossy, unequalized channel
//!    smears each bit into its successors);
//! 3. crosstalk from neighbouring wires closes an amplitude slice
//!    proportional to the *transmit* swing of the aggressors;
//! 4. what remains is compared against Gaussian noise to yield the BER.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ber;
use crate::crosstalk;
use crate::loss;
use crate::tech::Technology;

/// Line modulation of the D2D link.
///
/// USR links overwhelmingly use NRZ (UCIe, BoW); PAM4 halves the Nyquist
/// frequency for the same bit rate — attractive on lossy channels — but
/// splits the received swing across three stacked eyes (a ~9.5 dB SNR
/// penalty). Whether that trade ever pays within D2D reach is exactly the
/// kind of question this model answers (see
/// [`crate::capacity::best_modulation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Modulation {
    /// Two-level signalling: Nyquist = bit rate / 2, one full-swing eye.
    #[default]
    Nrz,
    /// Four-level signalling: Nyquist = bit rate / 4, three stacked eyes
    /// each one third of the received swing.
    Pam4,
}

impl Modulation {
    /// Nyquist frequency in GHz for a per-wire bit rate in Gb/s.
    #[must_use]
    pub fn nyquist_ghz(&self, bit_rate_gbps: f64) -> f64 {
        match self {
            Modulation::Nrz => bit_rate_gbps / 2.0,
            Modulation::Pam4 => bit_rate_gbps / 4.0,
        }
    }

    /// Number of stacked eyes the received swing is divided across.
    #[must_use]
    pub fn eye_divisor(&self) -> f64 {
        match self {
            Modulation::Nrz => 1.0,
            Modulation::Pam4 => 3.0,
        }
    }
}

/// Electrical budget of the transceiver pair, independent of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalBudget {
    /// Transmit swing in volts (peak-to-peak differential or single-ended
    /// full swing, as long as it is consistent with the noise sigma).
    pub tx_swing_v: f64,
    /// Input-referred Gaussian noise sigma at the receiver, in volts
    /// (thermal noise, supply noise, and timing jitter folded in).
    pub rx_noise_sigma_v: f64,
    /// Fraction of the received eye closed by ISI per 10 dB of *wire* loss
    /// at Nyquist (unequalized receivers; 0 disables ISI modelling).
    pub isi_fraction_per_10db: f64,
}

impl SignalBudget {
    /// UCIe-class defaults: 0.4 V swing, 8 mV noise sigma, 50% eye closure
    /// per 10 dB of unequalized wire loss.
    #[must_use]
    pub fn new() -> Self {
        Self { tx_swing_v: 0.4, rx_noise_sigma_v: 0.008, isi_fraction_per_10db: 0.5 }
    }
}

impl Default for SignalBudget {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of an eye analysis at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyeAnalysis {
    /// Per-wire bit rate under analysis, in Gb/s.
    pub bit_rate_gbps: f64,
    /// Link length in mm.
    pub length_mm: f64,
    /// Total insertion loss at Nyquist, in dB.
    pub insertion_loss_db: f64,
    /// Received signal swing after channel loss, in volts.
    pub received_swing_v: f64,
    /// Eye closure due to inter-symbol interference, in volts.
    pub isi_closure_v: f64,
    /// Eye closure due to worst-case aggressor crosstalk, in volts.
    pub crosstalk_closure_v: f64,
    /// Remaining vertical eye opening, in volts (≥ 0).
    pub eye_height_v: f64,
    /// The Q-function argument `eye/2σ`.
    pub q_argument: f64,
    /// `log₁₀` of the estimated bit error rate.
    pub log10_ber: f64,
}

impl EyeAnalysis {
    /// `true` if the link meets the given BER target (e.g. `-15.0`).
    #[must_use]
    pub fn meets(&self, log10_ber_target: f64) -> bool {
        self.log10_ber <= log10_ber_target
    }
}

impl fmt::Display for EyeAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} Gb/s over {:.2} mm: IL {:.2} dB, eye {:.1} mV, log10(BER) {:.1}",
            self.bit_rate_gbps,
            self.length_mm,
            self.insertion_loss_db,
            self.eye_height_v * 1e3,
            self.log10_ber
        )
    }
}

/// Analyzes the eye of a link of `length_mm` carrying `bit_rate_gbps` per
/// wire (NRZ: Nyquist = bit rate / 2) over the given technology.
///
/// This adopts the paper's §V convention that a link "operated at `f` GHz"
/// carries `f` Gb/s per data wire, so passing the paper's 16 GHz operating
/// point means a 16 Gb/s wire evaluated at an 8 GHz Nyquist.
#[must_use]
pub fn analyze(
    tech: &Technology,
    budget: &SignalBudget,
    bit_rate_gbps: f64,
    length_mm: f64,
) -> EyeAnalysis {
    analyze_with_modulation(tech, budget, bit_rate_gbps, length_mm, Modulation::Nrz)
}

/// [`analyze`] under an explicit line modulation: PAM4 halves the Nyquist
/// frequency (less channel loss) but divides the surviving eye by three.
#[must_use]
pub fn analyze_with_modulation(
    tech: &Technology,
    budget: &SignalBudget,
    bit_rate_gbps: f64,
    length_mm: f64,
    modulation: Modulation,
) -> EyeAnalysis {
    let nyquist = modulation.nyquist_ghz(bit_rate_gbps);
    let il_db = loss::insertion_loss_db(tech, nyquist, length_mm);
    let wire_db = loss::wire_loss_db(tech, nyquist, length_mm);
    let received = budget.tx_swing_v * loss::amplitude_ratio(il_db);
    let isi = received * (budget.isi_fraction_per_10db * wire_db / 10.0).clamp(0.0, 1.0);
    let xt = budget.tx_swing_v * crosstalk::total_ratio(tech, nyquist, length_mm);
    let eye = ((received - isi - xt) / modulation.eye_divisor()).max(0.0);
    let q_arg = if budget.rx_noise_sigma_v > 0.0 {
        eye / (2.0 * budget.rx_noise_sigma_v)
    } else if eye > 0.0 {
        f64::INFINITY // noiseless with an open eye: error free
    } else {
        0.0 // closed eye: a coin flip regardless of noise
    };
    let log10_ber = if q_arg.is_finite() { ber::log10_q(q_arg) } else { f64::NEG_INFINITY };
    EyeAnalysis {
        bit_rate_gbps,
        length_mm,
        insertion_loss_db: il_db,
        received_swing_v: received,
        isi_closure_v: isi,
        crosstalk_closure_v: xt,
        eye_height_v: eye,
        q_argument: q_arg,
        log10_ber,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_links_are_clean() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let a = analyze(&sub, &b, 16.0, 1.0);
        assert!(a.log10_ber < -15.0, "{a}");
        assert!(a.eye_height_v > 0.15);
    }

    #[test]
    fn eye_shrinks_with_length() {
        let int = Technology::silicon_interposer();
        let b = SignalBudget::default();
        let mut last_eye = f64::INFINITY;
        for l in [0.5, 1.0, 2.0, 3.0, 5.0] {
            let a = analyze(&int, &b, 16.0, l);
            assert!(a.eye_height_v < last_eye, "eye not shrinking at {l} mm");
            last_eye = a.eye_height_v;
        }
    }

    #[test]
    fn eye_shrinks_with_bit_rate() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let slow = analyze(&sub, &b, 8.0, 3.0);
        let fast = analyze(&sub, &b, 32.0, 3.0);
        assert!(fast.eye_height_v < slow.eye_height_v);
        assert!(fast.log10_ber > slow.log10_ber);
    }

    #[test]
    fn eye_never_negative() {
        let int = Technology::silicon_interposer();
        let b = SignalBudget::default();
        let a = analyze(&int, &b, 64.0, 50.0);
        assert_eq!(a.eye_height_v, 0.0);
        // A fully closed eye is a coin flip: Q(0) = 0.5.
        assert!((a.log10_ber - 0.5_f64.log10()).abs() < 1e-9, "{}", a.log10_ber);
    }

    #[test]
    fn paper_calibration_substrate_reaches_4mm() {
        // §V: adjacent-chiplet links are "below 4 mm in general" — the
        // substrate preset must carry the paper's 16 Gb/s at 4 mm.
        let sub = Technology::organic_substrate();
        let a = analyze(&sub, &SignalBudget::default(), 16.0, 4.0);
        assert!(a.meets(-15.0), "4 mm substrate link fails: {a}");
        // ... but not at 6 mm: the reach limit is real.
        let far = analyze(&sub, &SignalBudget::default(), 16.0, 6.0);
        assert!(!far.meets(-15.0), "6 mm substrate link unrealistically clean: {far}");
    }

    #[test]
    fn paper_calibration_interposer_reaches_2mm() {
        // §II: interposer links must stay ≤ 2 mm (UCIe) at full rate.
        let int = Technology::silicon_interposer();
        let a = analyze(&int, &SignalBudget::default(), 16.0, 2.0);
        assert!(a.meets(-15.0), "2 mm interposer link fails: {a}");
        let far = analyze(&int, &SignalBudget::default(), 16.0, 3.0);
        assert!(!far.meets(-15.0), "3 mm interposer link unrealistically clean: {far}");
    }

    #[test]
    fn pam4_halves_nyquist_and_splits_the_eye() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let nrz = analyze_with_modulation(&sub, &b, 16.0, 2.0, Modulation::Nrz);
        let pam4 = analyze_with_modulation(&sub, &b, 16.0, 2.0, Modulation::Pam4);
        // Less channel loss at the lower Nyquist...
        assert!(pam4.insertion_loss_db < nrz.insertion_loss_db);
        assert!(pam4.received_swing_v > nrz.received_swing_v);
        // ...but the 3-way eye split costs more than the loss saves at
        // D2D lengths.
        assert!(pam4.eye_height_v < nrz.eye_height_v);
        assert!(pam4.log10_ber > nrz.log10_ber);
    }

    #[test]
    fn nrz_dominates_within_usr_reach() {
        // The honest engineering conclusion (and the reason UCIe/BoW are
        // NRZ): everywhere NRZ meets the BER target, the PAM4 eye split
        // (~9.5 dB) outweighs its loss savings. (On channels dead for
        // both — far past reach — PAM4's lower loss *does* lead, which is
        // why long-haul SerDes are PAM4; the crossover lies beyond any
        // feasible USR operating point.)
        let b = SignalBudget::default();
        let mut feasible_points = 0;
        for tech in [Technology::organic_substrate(), Technology::silicon_interposer()] {
            for rate in [8.0, 16.0, 32.0] {
                for length in [0.5, 1.0, 2.0, 4.0] {
                    let nrz = analyze_with_modulation(&tech, &b, rate, length, Modulation::Nrz);
                    if !nrz.meets(-15.0) {
                        continue; // outside the feasible envelope
                    }
                    feasible_points += 1;
                    let pam4 =
                        analyze_with_modulation(&tech, &b, rate, length, Modulation::Pam4);
                    assert!(
                        nrz.log10_ber <= pam4.log10_ber + 1e-9,
                        "{} at {rate} Gb/s, {length} mm: NRZ {} vs PAM4 {}",
                        tech.name,
                        nrz.log10_ber,
                        pam4.log10_ber
                    );
                }
            }
        }
        assert!(feasible_points >= 8, "envelope too small to claim dominance");
    }

    #[test]
    fn pam4_penalty_shrinks_with_length() {
        // The loss-slope advantage grows with length: the BER *gap*
        // between modulations narrows as the channel gets longer (PAM4
        // would win where the wire loss difference exceeds ~9.5 dB, which
        // lies beyond any feasible USR reach for these technologies).
        let int = Technology::silicon_interposer();
        let b = SignalBudget::default();
        let gap = |l: f64| {
            let nrz = analyze_with_modulation(&int, &b, 16.0, l, Modulation::Nrz);
            let pam4 = analyze_with_modulation(&int, &b, 16.0, l, Modulation::Pam4);
            pam4.q_argument / nrz.q_argument.max(1e-12)
        };
        // The PAM4/NRZ eye ratio improves monotonically with length.
        assert!(gap(3.0) > gap(1.0), "gap(3mm) {} !> gap(1mm) {}", gap(3.0), gap(1.0));
    }

    #[test]
    fn budget_components_sum_consistently() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget::default();
        let a = analyze(&sub, &b, 16.0, 2.5);
        let reconstructed = a.received_swing_v - a.isi_closure_v - a.crosstalk_closure_v;
        assert!((a.eye_height_v - reconstructed.max(0.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_gives_error_free_open_eye() {
        let sub = Technology::organic_substrate();
        let b = SignalBudget { rx_noise_sigma_v: 0.0, ..SignalBudget::default() };
        let a = analyze(&sub, &b, 16.0, 1.0);
        assert_eq!(a.log10_ber, f64::NEG_INFINITY);
    }

    #[test]
    fn display_is_informative() {
        let a = analyze(&Technology::organic_substrate(), &SignalBudget::default(), 16.0, 2.0);
        let s = a.to_string();
        assert!(s.contains("Gb/s") && s.contains("mm") && s.contains("dB"), "{s}");
    }
}
