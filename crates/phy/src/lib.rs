//! Signal-integrity model for ultra-short-reach (USR) die-to-die links.
//!
//! The HexaMesh paper's link model (§V) treats the operating frequency of a
//! D2D link as an *input*, justified by the observation that links between
//! adjacent chiplets are short (< 4 mm in general, < 2 mm for N ≥ 10). Its
//! related-work section points at Dehlaghi et al. (*Ultra-Short-Reach
//! Interconnects for Die-to-Die Links*, IEEE SSCS Magazine 2019) as the way
//! to extend that model with insertion-loss, crosstalk, and bit-error-rate
//! predictions. This crate is that extension, built from scratch:
//!
//! * [`tech`] — wiring-technology presets (organic package substrate,
//!   silicon interposer) with loss and coupling coefficients;
//! * [`loss`] — insertion loss vs. frequency and length (skin-effect and
//!   dielectric terms plus fixed bump/pad transitions);
//! * [`crosstalk`] — aggressor coupling vs. length and frequency;
//! * [`eye`] — eye-diagram budget: received swing, ISI and crosstalk
//!   closure, eye height;
//! * [`ber`] — Gaussian tail math (`erfc`, Q-function, `log₁₀ BER`);
//! * [`capacity`] — the solvers that answer the questions the paper leaves
//!   to intuition: the maximum bit rate a link of a given length sustains at
//!   a target BER, and the maximum length at a given bit rate.
//!
//! The presets are calibrated so that at the paper's operating point
//! (16 Gb/s per wire, BER ≤ 1e−15) an organic-substrate link is good to
//! roughly 4 mm and a silicon-interposer link to roughly 2 mm — the limits
//! §II and §V of the paper quote from the UCIe specification.
//!
//! # Example
//!
//! ```
//! use chiplet_phy::{capacity, eye, SignalBudget, Technology};
//!
//! let interposer = Technology::silicon_interposer();
//! let budget = SignalBudget::default();
//!
//! // The paper's operating point: 16 Gb/s per wire.
//! let analysis = eye::analyze(&interposer, &budget, 16.0, 1.5);
//! assert!(analysis.log10_ber < -15.0, "1.5 mm interposer link is clean");
//!
//! // How long can the link get before BER 1e-15 is violated?
//! let reach = capacity::max_length_mm(&interposer, &budget, 16.0, -15.0)
//!     .expect("the operating point is feasible at zero length");
//! assert!(reach > 1.5 && reach < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod capacity;
pub mod crosstalk;
pub mod eye;
pub mod loss;
pub mod tech;

pub use capacity::{best_modulation, derated_bit_rate_gbps, max_bit_rate_gbps, max_length_mm};
pub use eye::{analyze, analyze_with_modulation, EyeAnalysis, Modulation, SignalBudget};
pub use tech::Technology;
