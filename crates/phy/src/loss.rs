//! Insertion loss of a D2D channel vs. frequency and length.
//!
//! The standard two-term transmission-line loss model:
//!
//! ```text
//! IL(f, ℓ) = IL_fixed + (k_c · √f + k_d · f) · ℓ      [dB]
//! ```
//!
//! where the conductor term (`k_c·√f`, skin effect) dominates at the short
//! lengths and moderate frequencies of USR links, and the dielectric term
//! (`k_d·f`) takes over at high frequencies. Both are linear in length —
//! the physical root of the paper's "links must be short to run fast" rule.

use crate::tech::Technology;

/// Insertion loss of the wire itself in dB (excluding the fixed transition
/// loss), at the given Nyquist frequency and length.
///
/// Returns `0.0` for zero length or zero frequency.
///
/// # Panics
///
/// Panics (debug) on negative inputs; use validated [`Technology`] values.
#[must_use]
pub fn wire_loss_db(tech: &Technology, nyquist_ghz: f64, length_mm: f64) -> f64 {
    debug_assert!(nyquist_ghz >= 0.0 && length_mm >= 0.0);
    (tech.conductor_loss * nyquist_ghz.sqrt() + tech.dielectric_loss * nyquist_ghz) * length_mm
}

/// Total insertion loss in dB: wire loss plus the fixed bump/pad transition
/// loss of the two link ends.
#[must_use]
pub fn insertion_loss_db(tech: &Technology, nyquist_ghz: f64, length_mm: f64) -> f64 {
    tech.fixed_loss_db + wire_loss_db(tech, nyquist_ghz, length_mm)
}

/// Converts a loss in dB to the surviving amplitude ratio (`10^(−dB/20)`).
#[must_use]
pub fn amplitude_ratio(loss_db: f64) -> f64 {
    10.0_f64.powf(-loss_db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_linear_in_length() {
        let t = Technology::organic_substrate();
        let one = wire_loss_db(&t, 8.0, 1.0);
        let four = wire_loss_db(&t, 8.0, 4.0);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }

    #[test]
    fn loss_grows_with_frequency() {
        let t = Technology::silicon_interposer();
        let lo = wire_loss_db(&t, 4.0, 2.0);
        let hi = wire_loss_db(&t, 16.0, 2.0);
        assert!(hi > lo);
    }

    #[test]
    fn zero_length_leaves_only_fixed_loss() {
        let t = Technology::organic_substrate();
        assert_eq!(insertion_loss_db(&t, 8.0, 0.0), t.fixed_loss_db);
        assert_eq!(wire_loss_db(&t, 8.0, 0.0), 0.0);
    }

    #[test]
    fn zero_frequency_is_lossless_wire() {
        let t = Technology::organic_substrate();
        assert_eq!(wire_loss_db(&t, 0.0, 3.0), 0.0);
    }

    #[test]
    fn amplitude_ratio_checkpoints() {
        assert!((amplitude_ratio(0.0) - 1.0).abs() < 1e-12);
        assert!((amplitude_ratio(6.0) - 0.501).abs() < 1e-3); // −6 dB ≈ half
        assert!((amplitude_ratio(20.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn substrate_one_db_per_mm_ballpark() {
        // At the paper's operating point (16 Gb/s → 8 GHz Nyquist) the
        // substrate preset loses ≈ 1 dB/mm — consistent with published USR
        // channel measurements.
        let t = Technology::organic_substrate();
        let per_mm = wire_loss_db(&t, 8.0, 1.0);
        assert!((0.8..1.3).contains(&per_mm), "{per_mm} dB/mm");
    }
}
