//! Wiring-technology presets for D2D link channels.
//!
//! §II of the paper contrasts the two established 2.5D wiring technologies:
//! organic package substrates (C4 bumps, thicker wires, lower loss) and
//! passive silicon interposers (micro-bumps, finer wires, *higher* signal
//! loss — the reason interposer links must stay below ~2 mm while substrate
//! links are good to ~4 mm at the same data rate).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from technology construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TechnologyError {
    /// A coefficient was negative or non-finite; the message names it.
    InvalidCoefficient(&'static str),
}

impl fmt::Display for TechnologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechnologyError::InvalidCoefficient(name) => {
                write!(f, "technology coefficient {name} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for TechnologyError {}

/// Electrical coefficients of one wiring technology.
///
/// Loss follows the standard two-term model: a conductor (skin-effect) term
/// growing with `√f` and a dielectric term growing with `f`, both linear in
/// length, plus a fixed per-link transition loss for the bump/pad
/// discontinuities at either end. Crosstalk is characterised by an
/// asymptotic coupling ratio approached exponentially with coupled length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Conductor/skin-effect loss coefficient in dB/(mm·√GHz).
    pub conductor_loss: f64,
    /// Dielectric loss coefficient in dB/(mm·GHz).
    pub dielectric_loss: f64,
    /// Fixed transition loss per link in dB (bumps, pads, ESD).
    pub fixed_loss_db: f64,
    /// Asymptotic aggressor amplitude-coupling ratio (0..1).
    pub xtalk_coupling: f64,
    /// Coupled length (mm) over which crosstalk approaches its asymptote.
    pub xtalk_saturation_mm: f64,
    /// Frequency (GHz, Nyquist) at which crosstalk reaches full strength;
    /// below it the coupling scales linearly with frequency.
    pub xtalk_freq_ref_ghz: f64,
    /// Number of simultaneously switching aggressor wires budgeted against
    /// each victim (2 for a single-row bump map: left and right neighbour).
    pub aggressors: u32,
}

impl Technology {
    /// An organic package substrate (§II, Fig. 1b): C4 bumps at 150–200 µm
    /// pitch, comparatively thick redistribution-layer traces.
    ///
    /// Calibrated so a 16 Gb/s-per-wire link reaches ≈ 4 mm at BER 1e−15
    /// with the default [`crate::SignalBudget`] — the "below 4 mm in
    /// general" operating envelope §V quotes for adjacent chiplets.
    #[must_use]
    pub fn organic_substrate() -> Self {
        Self {
            name: "organic package substrate".to_owned(),
            conductor_loss: 0.28,
            dielectric_loss: 0.03,
            fixed_loss_db: 0.8,
            xtalk_coupling: 0.05,
            xtalk_saturation_mm: 2.0,
            xtalk_freq_ref_ghz: 8.0,
            aggressors: 2,
        }
    }

    /// A passive silicon interposer (§II, Fig. 1c): micro-bumps at 30–60 µm
    /// pitch, fine BEOL wires with high sheet resistance and denser coupling.
    ///
    /// Calibrated so a 16 Gb/s-per-wire link reaches ≈ 2 mm at BER 1e−15 —
    /// the "≤ 2 mm" interposer limit §II quotes from UCIe.
    #[must_use]
    pub fn silicon_interposer() -> Self {
        Self {
            name: "silicon interposer".to_owned(),
            conductor_loss: 0.65,
            dielectric_loss: 0.045,
            fixed_loss_db: 0.6,
            xtalk_coupling: 0.07,
            xtalk_saturation_mm: 1.5,
            xtalk_freq_ref_ghz: 8.0,
            aggressors: 2,
        }
    }

    /// Validates that every coefficient is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`TechnologyError::InvalidCoefficient`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), TechnologyError> {
        let checks: [(&'static str, f64); 6] = [
            ("conductor_loss", self.conductor_loss),
            ("dielectric_loss", self.dielectric_loss),
            ("fixed_loss_db", self.fixed_loss_db),
            ("xtalk_coupling", self.xtalk_coupling),
            ("xtalk_saturation_mm", self.xtalk_saturation_mm),
            ("xtalk_freq_ref_ghz", self.xtalk_freq_ref_ghz),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v < 0.0 {
                return Err(TechnologyError::InvalidCoefficient(name));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Technology::organic_substrate().validate().unwrap();
        Technology::silicon_interposer().validate().unwrap();
    }

    #[test]
    fn interposer_is_lossier_per_mm() {
        let sub = Technology::organic_substrate();
        let int = Technology::silicon_interposer();
        // At the paper's Nyquist (8 GHz for 16 Gb/s NRZ per wire):
        let per_mm =
            |t: &Technology| t.conductor_loss * 8.0_f64.sqrt() + t.dielectric_loss * 8.0;
        assert!(per_mm(&int) > 1.5 * per_mm(&sub));
    }

    #[test]
    fn validation_rejects_bad_coefficients() {
        let mut t = Technology::organic_substrate();
        t.conductor_loss = f64::NAN;
        assert_eq!(t.validate(), Err(TechnologyError::InvalidCoefficient("conductor_loss")));
        let mut t = Technology::organic_substrate();
        t.xtalk_coupling = -0.1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn display_shows_name() {
        let t = Technology::silicon_interposer();
        assert_eq!(t.to_string(), "silicon interposer");
    }
}
