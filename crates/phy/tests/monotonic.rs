//! Property tests for the signal-integrity model: physical monotonicities
//! and solver consistency that must hold for any reasonable channel.

use chiplet_phy::{ber, capacity, crosstalk, eye, loss, SignalBudget, Technology};
use proptest::prelude::*;

fn arb_tech() -> impl Strategy<Value = Technology> {
    (0.05f64..1.0, 0.005f64..0.08, 0.0f64..1.5, 0.0f64..0.12, 0.5f64..4.0).prop_map(
        |(kc, kd, fixed, xt, sat)| Technology {
            name: "random".into(),
            conductor_loss: kc,
            dielectric_loss: kd,
            fixed_loss_db: fixed,
            xtalk_coupling: xt,
            xtalk_saturation_mm: sat,
            xtalk_freq_ref_ghz: 8.0,
            aggressors: 2,
        },
    )
}

proptest! {
    #[test]
    fn ber_worsens_with_length(tech in arb_tech(), l in 0.1f64..8.0, dl in 0.1f64..4.0) {
        let b = SignalBudget::default();
        let near = eye::analyze(&tech, &b, 16.0, l);
        let far = eye::analyze(&tech, &b, 16.0, l + dl);
        prop_assert!(far.log10_ber >= near.log10_ber - 1e-9,
            "BER improved with length: {} -> {}", near.log10_ber, far.log10_ber);
    }

    #[test]
    fn ber_worsens_with_bit_rate(tech in arb_tech(), r in 2.0f64..40.0, dr in 1.0f64..24.0) {
        let b = SignalBudget::default();
        let slow = eye::analyze(&tech, &b, r, 2.0);
        let fast = eye::analyze(&tech, &b, r + dr, 2.0);
        prop_assert!(fast.log10_ber >= slow.log10_ber - 1e-9);
    }

    #[test]
    fn eye_components_are_physical(tech in arb_tech(), r in 1.0f64..64.0, l in 0.0f64..20.0) {
        let b = SignalBudget::default();
        let a = eye::analyze(&tech, &b, r, l);
        prop_assert!(a.insertion_loss_db >= tech.fixed_loss_db - 1e-12);
        prop_assert!(a.received_swing_v >= 0.0 && a.received_swing_v <= b.tx_swing_v + 1e-12);
        prop_assert!(a.isi_closure_v >= 0.0 && a.crosstalk_closure_v >= 0.0);
        prop_assert!(a.eye_height_v >= 0.0);
        prop_assert!(a.eye_height_v <= a.received_swing_v + 1e-12);
        prop_assert!(a.log10_ber <= 0.0);
    }

    #[test]
    fn derated_rate_is_feasible_and_capped(tech in arb_tech(), l in 0.1f64..10.0) {
        let b = SignalBudget::default();
        let derated = capacity::derated_bit_rate_gbps(&tech, &b, l, 16.0, -15.0);
        prop_assert!((0.0..=16.0).contains(&derated));
        if derated > 0.0 {
            let a = eye::analyze(&tech, &b, derated, l);
            prop_assert!(a.meets(-15.0), "derated point violates target: {a}");
        }
    }

    #[test]
    fn reach_shrinks_with_rate(tech in arb_tech()) {
        let b = SignalBudget::default();
        let slow = capacity::max_length_mm(&tech, &b, 8.0, -15.0);
        let fast = capacity::max_length_mm(&tech, &b, 32.0, -15.0);
        match (slow, fast) {
            (Some(s), Some(f)) => prop_assert!(f <= s + 1e-6, "reach grew with rate: {s} -> {f}"),
            (None, Some(_)) => prop_assert!(false, "feasible at 32 Gb/s but not at 8 Gb/s"),
            _ => {}
        }
    }

    #[test]
    fn loss_is_additive_in_length(tech in arb_tech(), f in 0.5f64..32.0,
                                  l1 in 0.0f64..10.0, l2 in 0.0f64..10.0) {
        let a = loss::wire_loss_db(&tech, f, l1);
        let b = loss::wire_loss_db(&tech, f, l2);
        let ab = loss::wire_loss_db(&tech, f, l1 + l2);
        prop_assert!((ab - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn crosstalk_bounded_by_asymptote(tech in arb_tech(), f in 0.0f64..64.0, l in 0.0f64..50.0) {
        let single = crosstalk::single_aggressor_ratio(&tech, f, l);
        prop_assert!(single >= 0.0);
        prop_assert!(single <= tech.xtalk_coupling + 1e-12);
        let total = crosstalk::total_ratio(&tech, f, l);
        prop_assert!((0.0..=1.0).contains(&total));
    }

    #[test]
    fn q_function_is_a_probability(x in -10.0f64..40.0) {
        let q = ber::q_function(x);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn erfc_within_range(x in -6.0f64..30.0) {
        let v = ber::erfc(x);
        prop_assert!((0.0..=2.0).contains(&v), "erfc({x}) = {v}");
    }

    #[test]
    fn log10_q_consistent_with_q(x in 0.0f64..35.0) {
        let q = ber::q_function(x);
        if q > 1e-300 {
            prop_assert!((ber::log10_q(x) - q.log10()).abs() < 2e-3);
        }
    }
}
