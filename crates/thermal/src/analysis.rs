//! Hotspot statistics over a thermal solution.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::solver::ThermalSolution;

/// Summary statistics of a temperature field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotReport {
    /// Peak temperature in °C.
    pub peak_c: f64,
    /// Mean temperature in °C.
    pub average_c: f64,
    /// Peak minus mean — how "spiky" the field is.
    pub gradient_c: f64,
    /// Location `(x, y)` of the hottest cell.
    pub peak_cell: (usize, usize),
    /// Fraction of cells within 3 °C of the peak (hotspot footprint).
    pub hotspot_fraction: f64,
}

impl HotspotReport {
    /// Computes the report for a solution.
    #[must_use]
    pub fn from_solution(solution: &ThermalSolution) -> Self {
        let peak = solution.peak_c();
        let avg = solution.average_c();
        let near_peak = solution.cells().iter().filter(|&&t| t >= peak - 3.0).count();
        Self {
            peak_c: peak,
            average_c: avg,
            gradient_c: peak - avg,
            peak_cell: solution.peak_cell(),
            hotspot_fraction: near_peak as f64 / solution.cells().len() as f64,
        }
    }
}

impl fmt::Display for HotspotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak {:.1} °C at ({}, {}), avg {:.1} °C, gradient {:.1} K, hotspot {:.1}%",
            self.peak_c,
            self.peak_cell.0,
            self.peak_cell.1,
            self.average_c,
            self.gradient_c,
            self.hotspot_fraction * 100.0
        )
    }
}

/// Renders the field as a coarse ASCII heat map (one character per cell,
/// `.:-=+*#%@` from coldest to hottest) — handy in examples and reports.
#[must_use]
pub fn ascii_heatmap(solution: &ThermalSolution) -> String {
    const RAMP: &[u8] = b".:-=+*#%@";
    let min = solution.cells().iter().copied().fold(f64::INFINITY, f64::min);
    let max = solution.peak_c();
    let span = (max - min).max(1e-9);
    let mut out = String::with_capacity((solution.width() + 1) * solution.height());
    for y in 0..solution.height() {
        for x in 0..solution.width() {
            let t = (solution.at(x, y) - min) / span;
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMap;
    use crate::solver::{solve, ThermalParams};

    fn centre_hotspot() -> ThermalSolution {
        let mut m = PowerMap::new(9, 7, 1.0).unwrap();
        m.add_rect_w(4.0, 3.0, 5.0, 4.0, 12.0).unwrap();
        solve(&m, &ThermalParams::default()).unwrap()
    }

    #[test]
    fn report_is_consistent() {
        let s = centre_hotspot();
        let r = HotspotReport::from_solution(&s);
        assert_eq!(r.peak_cell, (4, 3));
        assert!(r.peak_c > r.average_c);
        assert!((r.gradient_c - (r.peak_c - r.average_c)).abs() < 1e-12);
        assert!(r.hotspot_fraction > 0.0 && r.hotspot_fraction < 0.5);
    }

    #[test]
    fn uniform_field_has_no_gradient() {
        let mut m = PowerMap::new(5, 5, 1.0).unwrap();
        m.add_rect_w(0.0, 0.0, 5.0, 5.0, 25.0).unwrap();
        let s = solve(&m, &ThermalParams::default()).unwrap();
        let r = HotspotReport::from_solution(&s);
        assert!(r.gradient_c.abs() < 1e-3);
        assert!((r.hotspot_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heatmap_shape_and_extremes() {
        let s = centre_hotspot();
        let art = ascii_heatmap(&s);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().all(|l| l.len() == 9));
        // The hottest glyph appears exactly at the peak cell.
        assert_eq!(lines[3].as_bytes()[4], b'@');
        // Corners are the coldest glyph.
        assert_eq!(lines[0].as_bytes()[0], b'.');
    }

    #[test]
    fn display_mentions_units() {
        let r = HotspotReport::from_solution(&centre_hotspot());
        let s = r.to_string();
        assert!(s.contains("peak") && s.contains("avg") && s.contains("hotspot"), "{s}");
    }
}
