//! The crate-wide error type.

use std::fmt;

/// Errors from power-map construction or the thermal solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// Grid dimensions or cell size were zero/non-finite.
    InvalidGrid(&'static str),
    /// A power value was negative or non-finite.
    InvalidPower(f64),
    /// A rectangle lies (partly) outside the power map.
    OutOfBounds {
        /// The offending coordinate description.
        what: &'static str,
    },
    /// A solver parameter was non-positive or non-finite.
    InvalidParameter(&'static str),
    /// The iterative solver did not reach the residual tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual in watts.
        residual: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            ThermalError::InvalidPower(p) => {
                write!(f, "power {p} must be finite and non-negative")
            }
            ThermalError::OutOfBounds { what } => {
                write!(f, "{what} lies outside the power map")
            }
            ThermalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ThermalError::NotConverged { iterations, residual } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.2e} W)"
            ),
        }
    }
}

impl std::error::Error for ThermalError {}
