//! Steady-state thermal analysis of 2.5D chiplet floorplans.
//!
//! §II of the paper notes that advanced integration schemes bring "thermal
//! problems", and the cross-layer co-optimisation work it cites (Coskun et
//! al., TCAD 2020 — related work \[16\]) treats operating temperature as a
//! first-class objective alongside ICI performance. This crate adds that
//! axis to the workspace: given a floorplan (a
//! [`chiplet_layout::Placement`]) and per-chiplet power, it predicts the
//! steady-state temperature field and its hotspots, so arrangements can be
//! compared thermally as well as topologically.
//!
//! * [`power`] — rasterises a floorplan into a per-cell power map;
//! * [`solver`] — a finite-difference steady-state heat solver
//!   (lateral conduction through die and heat spreader, vertical path to
//!   ambient through the heat sink) using successive over-relaxation;
//! * [`analysis`] — peak/average temperature, gradients, hotspot location.
//!
//! # Model
//!
//! The package is discretised into square cells. Each cell exchanges heat
//! laterally with its 4-neighbours through an effective spreader
//! conductance `G_l` (W/K, independent of cell size for square cells) and
//! vertically with ambient through an areal resistance `R_v` (K·mm²/W).
//! Steady state balances, per cell `i`:
//!
//! ```text
//! Σ_j G_l·(T_j − T_i)  +  P_i  −  (A_cell / R_v)·(T_i − T_amb)  =  0
//! ```
//!
//! Boundaries are adiabatic (no lateral flux off the package edge), the
//! standard worst-case assumption.
//!
//! # Example
//!
//! ```
//! use chiplet_thermal::{power::PowerMap, solver::{solve, ThermalParams}};
//!
//! // A 10 × 10 mm package with a single 25 W hot square in the centre.
//! let mut map = PowerMap::new(20, 20, 0.5)?;
//! map.add_rect_w(4.0, 4.0, 6.0, 6.0, 25.0)?;
//! let solution = solve(&map, &ThermalParams::default())?;
//! assert!(solution.peak_c() > solution.average_c());
//! # Ok::<(), chiplet_thermal::ThermalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod error;
pub mod power;
pub mod solver;
pub mod svg;

pub use analysis::HotspotReport;
pub use error::ThermalError;
pub use power::PowerMap;
pub use solver::{solve, ThermalParams, ThermalSolution};
