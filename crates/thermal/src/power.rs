//! Power maps: rasterising floorplans into per-cell dissipation.

use chiplet_layout::{PlacedChiplet, Placement};
use serde::{Deserialize, Serialize};

use crate::error::ThermalError;

/// A uniform grid of square cells, each holding dissipated power in watts.
///
/// Cell `(x, y)` covers the physical square
/// `[x·cell_mm, (x+1)·cell_mm) × [y·cell_mm, (y+1)·cell_mm)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    width: usize,
    height: usize,
    cell_mm: f64,
    /// Row-major power per cell in watts.
    power_w: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map of `width × height` cells of
    /// `cell_mm` side length.
    ///
    /// # Errors
    ///
    /// Rejects zero dimensions and non-positive or non-finite cell sizes.
    pub fn new(width: usize, height: usize, cell_mm: f64) -> Result<Self, ThermalError> {
        if width == 0 || height == 0 {
            return Err(ThermalError::InvalidGrid("dimensions must be positive"));
        }
        if !cell_mm.is_finite() || cell_mm <= 0.0 {
            return Err(ThermalError::InvalidGrid("cell size must be positive and finite"));
        }
        Ok(Self { width, height, cell_mm, power_w: vec![0.0; width * height] })
    }

    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell side length in mm.
    #[must_use]
    pub fn cell_mm(&self) -> f64 {
        self.cell_mm
    }

    /// Power of cell `(x, y)` in watts.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn power_at(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "cell ({x}, {y}) out of range");
        self.power_w[y * self.width + x]
    }

    /// Row-major per-cell powers.
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.power_w
    }

    /// Total dissipated power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.power_w.iter().sum()
    }

    /// Adds `watts` uniformly over the physical rectangle
    /// `[x0, x1) × [y0, y1)` (mm), distributing power to cells by exact
    /// area overlap.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidPower`] for negative or non-finite power;
    /// * [`ThermalError::OutOfBounds`] if the rectangle exceeds the map or
    ///   is degenerate (`x1 <= x0` or `y1 <= y0`).
    pub fn add_rect_w(
        &mut self,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        watts: f64,
    ) -> Result<(), ThermalError> {
        if !watts.is_finite() || watts < 0.0 {
            return Err(ThermalError::InvalidPower(watts));
        }
        if !(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite()) {
            return Err(ThermalError::OutOfBounds { what: "non-finite rectangle" });
        }
        if x1 <= x0 || y1 <= y0 {
            return Err(ThermalError::OutOfBounds { what: "degenerate rectangle" });
        }
        let (w_mm, h_mm) =
            (self.width as f64 * self.cell_mm, self.height as f64 * self.cell_mm);
        if x0 < -1e-9 || y0 < -1e-9 || x1 > w_mm + 1e-9 || y1 > h_mm + 1e-9 {
            return Err(ThermalError::OutOfBounds { what: "rectangle" });
        }
        let area = (x1 - x0) * (y1 - y0);
        let density = watts / area; // W/mm²
        let cx0 = (x0 / self.cell_mm).floor().max(0.0) as usize;
        let cy0 = (y0 / self.cell_mm).floor().max(0.0) as usize;
        let cx1 = ((x1 / self.cell_mm).ceil() as usize).min(self.width);
        let cy1 = ((y1 / self.cell_mm).ceil() as usize).min(self.height);
        for cy in cy0..cy1 {
            for cx in cx0..cx1 {
                let cell_x0 = cx as f64 * self.cell_mm;
                let cell_y0 = cy as f64 * self.cell_mm;
                let overlap_x = (x1.min(cell_x0 + self.cell_mm) - x0.max(cell_x0)).max(0.0);
                let overlap_y = (y1.min(cell_y0 + self.cell_mm) - y0.max(cell_y0)).max(0.0);
                self.power_w[cy * self.width + cx] += density * overlap_x * overlap_y;
            }
        }
        Ok(())
    }

    /// Builds a power map from a floorplan: every chiplet's power spread
    /// uniformly over its footprint. `mm_per_unit` converts the placement's
    /// integer layout units to millimetres; `chiplet_watts` assigns power
    /// per chiplet (e.g. by [`chiplet_layout::ChipletKind`]).
    ///
    /// The map is sized to the placement's bounding box, padded by
    /// `padding_cells` of package on each side, with cells of `cell_mm`.
    ///
    /// # Errors
    ///
    /// As [`PowerMap::new`] and [`PowerMap::add_rect_w`]; also rejects an
    /// empty placement and non-positive `mm_per_unit`.
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_layout::{PlacedChiplet, Placement, Rect};
    /// use chiplet_thermal::PowerMap;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut placement = Placement::new();
    /// placement.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2)?))?;
    /// // 1 layout unit = 2 mm, 1 mm cells, no padding, 10 W per chiplet.
    /// let map = PowerMap::from_placement(&placement, 2.0, 1.0, 0, |_| 10.0)?;
    /// assert!((map.total_w() - 10.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_placement(
        placement: &Placement,
        mm_per_unit: f64,
        cell_mm: f64,
        padding_cells: usize,
        mut chiplet_watts: impl FnMut(&PlacedChiplet) -> f64,
    ) -> Result<Self, ThermalError> {
        if !mm_per_unit.is_finite() || mm_per_unit <= 0.0 {
            return Err(ThermalError::InvalidGrid("mm_per_unit must be positive"));
        }
        let bounds =
            placement.bounding_box().ok_or(ThermalError::InvalidGrid("placement is empty"))?;
        let pad_mm = padding_cells as f64 * cell_mm;
        let width_mm = bounds.width() as f64 * mm_per_unit + 2.0 * pad_mm;
        let height_mm = bounds.height() as f64 * mm_per_unit + 2.0 * pad_mm;
        let width = (width_mm / cell_mm).ceil() as usize;
        let height = (height_mm / cell_mm).ceil() as usize;
        let mut map = Self::new(width.max(1), height.max(1), cell_mm)?;
        for chiplet in placement.chiplets() {
            let r = chiplet.rect;
            let x0 = (r.x() - bounds.x()) as f64 * mm_per_unit + pad_mm;
            let y0 = (r.y() - bounds.y()) as f64 * mm_per_unit + pad_mm;
            let x1 = x0 + r.width() as f64 * mm_per_unit;
            let y1 = y0 + r.height() as f64 * mm_per_unit;
            map.add_rect_w(x0, y0, x1, y1, chiplet_watts(chiplet))?;
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_layout::Rect;

    #[test]
    fn construction_validates() {
        assert!(PowerMap::new(0, 4, 1.0).is_err());
        assert!(PowerMap::new(4, 4, 0.0).is_err());
        assert!(PowerMap::new(4, 4, f64::NAN).is_err());
        let m = PowerMap::new(3, 2, 0.5).unwrap();
        assert_eq!(m.width(), 3);
        assert_eq!(m.height(), 2);
        assert_eq!(m.total_w(), 0.0);
    }

    #[test]
    fn rect_power_is_conserved() {
        let mut m = PowerMap::new(10, 10, 1.0).unwrap();
        m.add_rect_w(1.25, 2.5, 6.75, 7.5, 42.0).unwrap();
        assert!((m.total_w() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn aligned_rect_fills_cells_uniformly() {
        let mut m = PowerMap::new(4, 4, 1.0).unwrap();
        m.add_rect_w(1.0, 1.0, 3.0, 3.0, 8.0).unwrap();
        // 4 cells × 2 W each.
        for (x, y) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
            assert!((m.power_at(x, y) - 2.0).abs() < 1e-12);
        }
        assert_eq!(m.power_at(0, 0), 0.0);
        assert_eq!(m.power_at(3, 3), 0.0);
    }

    #[test]
    fn partial_overlap_splits_by_area() {
        let mut m = PowerMap::new(2, 1, 1.0).unwrap();
        // Covers 100% of cell 0 and 50% of cell 1.
        m.add_rect_w(0.0, 0.0, 1.5, 1.0, 3.0).unwrap();
        assert!((m.power_at(0, 0) - 2.0).abs() < 1e-12);
        assert!((m.power_at(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_rects() {
        let mut m = PowerMap::new(4, 4, 1.0).unwrap();
        assert!(matches!(
            m.add_rect_w(0.0, 0.0, 1.0, 1.0, -1.0),
            Err(ThermalError::InvalidPower(_))
        ));
        assert!(m.add_rect_w(2.0, 2.0, 1.0, 3.0, 1.0).is_err()); // x1 < x0
        assert!(m.add_rect_w(0.0, 0.0, 5.0, 1.0, 1.0).is_err()); // out of map
        assert_eq!(m.total_w(), 0.0);
    }

    #[test]
    fn from_placement_maps_chiplets() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2).unwrap())).unwrap();
        p.push(PlacedChiplet::compute(Rect::new(2, 0, 2, 2).unwrap())).unwrap();
        // 1 unit = 2 mm, 1 mm cells, no padding: 8 × 4 cells.
        let m = PowerMap::from_placement(&p, 2.0, 1.0, 0, |_| 10.0).unwrap();
        assert_eq!((m.width(), m.height()), (8, 4));
        assert!((m.total_w() - 20.0).abs() < 1e-9);
        // Left chiplet covers x 0..4: uniform 10 W / 16 cells.
        assert!((m.power_at(0, 0) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn from_placement_applies_padding_and_power_fn() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2).unwrap())).unwrap();
        p.push(PlacedChiplet::io(Rect::new(3, 0, 1, 2).unwrap())).unwrap();
        let m = PowerMap::from_placement(&p, 1.0, 1.0, 2, |c| match c.kind {
            chiplet_layout::ChipletKind::Compute => 8.0,
            chiplet_layout::ChipletKind::Io => 2.0,
        })
        .unwrap();
        // Bounding box 4 × 2 + 2 cells padding each side: 8 × 6.
        assert_eq!((m.width(), m.height()), (8, 6));
        assert!((m.total_w() - 10.0).abs() < 1e-9);
        // Padding cells stay cold.
        assert_eq!(m.power_at(0, 0), 0.0);
    }

    #[test]
    fn empty_placement_is_rejected() {
        let p = Placement::new();
        assert!(PowerMap::from_placement(&p, 1.0, 1.0, 0, |_| 1.0).is_err());
    }
}
