//! The finite-difference steady-state heat solver.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::power::PowerMap;

/// Physical and numerical parameters of the solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (heat-sink inlet) temperature in °C.
    pub ambient_c: f64,
    /// Areal thermal resistance of the vertical path (die → TIM → sink →
    /// ambient) in K·mm²/W.
    pub r_vertical_k_mm2_per_w: f64,
    /// Effective lateral conductance between adjacent cells in W/K
    /// (spreader conductivity × thickness; independent of cell size for
    /// square cells).
    pub lateral_conductance_w_per_k: f64,
    /// Successive over-relaxation factor, in `(0, 2)`.
    pub sor_omega: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Convergence criterion: maximum per-cell power-balance residual in
    /// watts.
    pub tolerance_w: f64,
}

impl ThermalParams {
    /// Laptop/server-class 2.5D package defaults: 25 °C ambient,
    /// 60 K·mm²/W vertical path, 0.5 W/K lateral spreading.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ambient_c: 25.0,
            r_vertical_k_mm2_per_w: 60.0,
            lateral_conductance_w_per_k: 0.5,
            sor_omega: 1.8,
            max_iterations: 50_000,
            tolerance_w: 1e-7,
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if !self.ambient_c.is_finite() {
            return Err(ThermalError::InvalidParameter("ambient_c must be finite"));
        }
        if !self.r_vertical_k_mm2_per_w.is_finite() || self.r_vertical_k_mm2_per_w <= 0.0 {
            return Err(ThermalError::InvalidParameter("r_vertical must be positive"));
        }
        if !self.lateral_conductance_w_per_k.is_finite()
            || self.lateral_conductance_w_per_k < 0.0
        {
            return Err(ThermalError::InvalidParameter(
                "lateral_conductance must be non-negative",
            ));
        }
        if !(0.0..2.0).contains(&self.sor_omega) || self.sor_omega <= 0.0 {
            return Err(ThermalError::InvalidParameter("sor_omega must be in (0, 2)"));
        }
        if self.max_iterations == 0 {
            return Err(ThermalError::InvalidParameter("max_iterations must be positive"));
        }
        if !self.tolerance_w.is_finite() || self.tolerance_w <= 0.0 {
            return Err(ThermalError::InvalidParameter("tolerance must be positive"));
        }
        Ok(())
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self::new()
    }
}

/// The converged temperature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalSolution {
    width: usize,
    height: usize,
    cell_mm: f64,
    temps_c: Vec<f64>,
    iterations: usize,
    residual_w: f64,
}

impl ThermalSolution {
    /// Temperature of cell `(x, y)` in °C.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "cell ({x}, {y}) out of range");
        self.temps_c[y * self.width + x]
    }

    /// Row-major cell temperatures in °C.
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.temps_c
    }

    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell side in mm (copied from the power map).
    #[must_use]
    pub fn cell_mm(&self) -> f64 {
        self.cell_mm
    }

    /// Peak temperature in °C.
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature in °C.
    #[must_use]
    pub fn average_c(&self) -> f64 {
        self.temps_c.iter().sum::<f64>() / self.temps_c.len() as f64
    }

    /// Location `(x, y)` of the hottest cell.
    #[must_use]
    pub fn peak_cell(&self) -> (usize, usize) {
        let (i, _) = self
            .temps_c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("solutions are never empty");
        (i % self.width, i / self.width)
    }

    /// Iterations the solver used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final power-balance residual in watts.
    #[must_use]
    pub fn residual_w(&self) -> f64 {
        self.residual_w
    }
}

/// Solves the steady-state heat equation for a power map.
///
/// # Errors
///
/// * [`ThermalError::InvalidParameter`] for out-of-range parameters;
/// * [`ThermalError::NotConverged`] if the SOR iteration fails to reach the
///   tolerance within the iteration cap.
pub fn solve(map: &PowerMap, params: &ThermalParams) -> Result<ThermalSolution, ThermalError> {
    params.validate()?;
    let (w, h) = (map.width(), map.height());
    let cell_area = map.cell_mm() * map.cell_mm();
    let g_v = cell_area / params.r_vertical_k_mm2_per_w; // W/K per cell
    let g_l = params.lateral_conductance_w_per_k;
    let power = map.cells();

    // Unknowns are temperature *rises* over ambient.
    let mut t = vec![0.0f64; w * h];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < params.max_iterations {
        iterations += 1;
        let mut max_residual = 0.0f64;
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                let mut neighbor_sum = 0.0;
                let mut neighbor_count = 0.0;
                if x > 0 {
                    neighbor_sum += t[i - 1];
                    neighbor_count += 1.0;
                }
                if x + 1 < w {
                    neighbor_sum += t[i + 1];
                    neighbor_count += 1.0;
                }
                if y > 0 {
                    neighbor_sum += t[i - w];
                    neighbor_count += 1.0;
                }
                if y + 1 < h {
                    neighbor_sum += t[i + w];
                    neighbor_count += 1.0;
                }
                let diag = g_v + g_l * neighbor_count;
                let rhs = power[i] + g_l * neighbor_sum;
                let gauss_seidel = rhs / diag;
                let updated = t[i] + params.sor_omega * (gauss_seidel - t[i]);
                // Power-balance residual of the *updated* value.
                let r = (power[i] + g_l * (neighbor_sum - neighbor_count * updated)
                    - g_v * updated)
                    .abs();
                max_residual = max_residual.max(r);
                t[i] = updated;
            }
        }
        residual = max_residual;
        if residual <= params.tolerance_w {
            let temps_c = t.iter().map(|dt| params.ambient_c + dt).collect();
            return Ok(ThermalSolution {
                width: w,
                height: h,
                cell_mm: map.cell_mm(),
                temps_c,
                iterations,
                residual_w: residual,
            });
        }
    }
    Err(ThermalError::NotConverged { iterations, residual })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_map(w: usize, h: usize, cell: f64, total_w: f64) -> PowerMap {
        let mut m = PowerMap::new(w, h, cell).unwrap();
        m.add_rect_w(0.0, 0.0, w as f64 * cell, h as f64 * cell, total_w).unwrap();
        m
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let m = PowerMap::new(8, 8, 1.0).unwrap();
        let s = solve(&m, &ThermalParams::default()).unwrap();
        assert!((s.peak_c() - 25.0).abs() < 1e-9);
        assert!((s.average_c() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_power_gives_uniform_analytic_temperature() {
        // With equal power everywhere, lateral terms cancel and every cell
        // sits at T_amb + q·R_v where q is the areal power density.
        let p = ThermalParams::default();
        let m = uniform_map(6, 6, 1.0, 36.0); // 1 W per 1 mm² cell
        let s = solve(&m, &p).unwrap();
        let expected = p.ambient_c + 1.0 * p.r_vertical_k_mm2_per_w / 1.0;
        for y in 0..6 {
            for x in 0..6 {
                assert!(
                    (s.at(x, y) - expected).abs() < 1e-3,
                    "cell ({x},{y}): {} vs {expected}",
                    s.at(x, y)
                );
            }
        }
    }

    #[test]
    fn point_source_peaks_at_the_source_with_symmetry() {
        let mut m = PowerMap::new(9, 9, 1.0).unwrap();
        m.add_rect_w(4.0, 4.0, 5.0, 5.0, 10.0).unwrap();
        let s = solve(&m, &ThermalParams::default()).unwrap();
        assert_eq!(s.peak_cell(), (4, 4));
        // 4-fold symmetry around the centre.
        for d in 1..4 {
            let right = s.at(4 + d, 4);
            let left = s.at(4 - d, 4);
            let up = s.at(4, 4 - d);
            let down = s.at(4, 4 + d);
            assert!((right - left).abs() < 1e-6);
            assert!((up - down).abs() < 1e-6);
            assert!((right - up).abs() < 1e-6);
        }
        // Temperature decays away from the source.
        assert!(s.at(5, 4) < s.at(4, 4));
        assert!(s.at(6, 4) < s.at(5, 4));
    }

    #[test]
    fn superposition_holds() {
        // The system is linear in power: T(P1 + P2) − T_amb =
        // (T(P1) − T_amb) + (T(P2) − T_amb).
        let p = ThermalParams::default();
        let mut m1 = PowerMap::new(7, 5, 1.0).unwrap();
        m1.add_rect_w(1.0, 1.0, 3.0, 3.0, 5.0).unwrap();
        let mut m2 = PowerMap::new(7, 5, 1.0).unwrap();
        m2.add_rect_w(4.0, 2.0, 6.0, 4.0, 7.0).unwrap();
        let mut both = PowerMap::new(7, 5, 1.0).unwrap();
        both.add_rect_w(1.0, 1.0, 3.0, 3.0, 5.0).unwrap();
        both.add_rect_w(4.0, 2.0, 6.0, 4.0, 7.0).unwrap();
        let s1 = solve(&m1, &p).unwrap();
        let s2 = solve(&m2, &p).unwrap();
        let s12 = solve(&both, &p).unwrap();
        for i in 0..(7 * 5) {
            let lhs = s12.cells()[i] - p.ambient_c;
            let rhs = (s1.cells()[i] - p.ambient_c) + (s2.cells()[i] - p.ambient_c);
            assert!((lhs - rhs).abs() < 1e-4, "cell {i}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn stronger_spreading_lowers_the_peak() {
        let mut m = PowerMap::new(9, 9, 1.0).unwrap();
        m.add_rect_w(3.0, 3.0, 6.0, 6.0, 20.0).unwrap();
        let weak =
            ThermalParams { lateral_conductance_w_per_k: 0.1, ..ThermalParams::default() };
        let strong =
            ThermalParams { lateral_conductance_w_per_k: 2.0, ..ThermalParams::default() };
        let s_weak = solve(&m, &weak).unwrap();
        let s_strong = solve(&m, &strong).unwrap();
        assert!(
            s_strong.peak_c() < s_weak.peak_c(),
            "strong {} !< weak {}",
            s_strong.peak_c(),
            s_weak.peak_c()
        );
        // Total heat still leaves through the vertical path: average rise
        // is set by total power, independent of spreading.
        assert!((s_strong.average_c() - s_weak.average_c()).abs() < 0.05);
    }

    #[test]
    fn insulated_cells_only_heat_through_vertical_path() {
        // With zero lateral conductance each cell is independent:
        // T = T_amb + P·R_v/A.
        let p = ThermalParams { lateral_conductance_w_per_k: 0.0, ..ThermalParams::default() };
        let mut m = PowerMap::new(3, 3, 2.0).unwrap(); // 4 mm² cells
        m.add_rect_w(2.0, 2.0, 4.0, 4.0, 8.0).unwrap(); // centre cell, 8 W
        let s = solve(&m, &p).unwrap();
        let expected_rise = 8.0 * p.r_vertical_k_mm2_per_w / 4.0;
        // The residual tolerance (W) maps to a K error of tolerance/G_v.
        assert!((s.at(1, 1) - (p.ambient_c + expected_rise)).abs() < 1e-4);
        assert!((s.at(0, 0) - p.ambient_c).abs() < 1e-4);
    }

    #[test]
    fn parameter_validation() {
        let m = PowerMap::new(2, 2, 1.0).unwrap();
        for bad in [
            ThermalParams { r_vertical_k_mm2_per_w: 0.0, ..ThermalParams::default() },
            ThermalParams { sor_omega: 2.5, ..ThermalParams::default() },
            ThermalParams { sor_omega: 0.0, ..ThermalParams::default() },
            ThermalParams { max_iterations: 0, ..ThermalParams::default() },
            ThermalParams { tolerance_w: -1.0, ..ThermalParams::default() },
            ThermalParams { lateral_conductance_w_per_k: -0.5, ..ThermalParams::default() },
            ThermalParams { ambient_c: f64::NAN, ..ThermalParams::default() },
        ] {
            assert!(solve(&m, &bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn impossible_tolerance_reports_non_convergence() {
        let m = uniform_map(4, 4, 1.0, 16.0);
        let p = ThermalParams {
            tolerance_w: 1e-300,
            max_iterations: 5,
            ..ThermalParams::default()
        };
        assert!(matches!(solve(&m, &p), Err(ThermalError::NotConverged { iterations: 5, .. })));
    }
}
