//! SVG rendering of temperature fields — publication-style heat maps.

use std::fmt::Write as _;

use crate::solver::ThermalSolution;

/// Pixels per thermal cell in the rendered SVG.
const CELL_PX: f64 = 8.0;

/// Renders the temperature field as an SVG heat map with a blue→red
/// colour ramp and a temperature legend. The output is a standalone SVG
/// document.
#[must_use]
pub fn render(solution: &ThermalSolution) -> String {
    let (w, h) = (solution.width(), solution.height());
    let min = solution.cells().iter().copied().fold(f64::INFINITY, f64::min);
    let max = solution.peak_c();
    let span = (max - min).max(1e-9);

    let width_px = w as f64 * CELL_PX;
    let height_px = h as f64 * CELL_PX + 24.0; // room for the legend
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    );
    for y in 0..h {
        for x in 0..w {
            let t = (solution.at(x, y) - min) / span;
            let (r, g, b) = ramp(t);
            let _ = writeln!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="{CELL_PX}" height="{CELL_PX}" fill="rgb({r},{g},{b})"/>"#,
                x as f64 * CELL_PX,
                y as f64 * CELL_PX,
            );
        }
    }
    let _ = writeln!(
        svg,
        r#"<text x="2" y="{:.1}" font-family="monospace" font-size="12">{min:.1} °C … {max:.1} °C</text>"#,
        h as f64 * CELL_PX + 16.0
    );
    svg.push_str("</svg>\n");
    svg
}

/// Blue → cyan → yellow → red ramp over `t ∈ [0, 1]`.
fn ramp(t: f64) -> (u8, u8, u8) {
    let t = t.clamp(0.0, 1.0);
    let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
    let (r, g, b) = if t < 1.0 / 3.0 {
        let u = t * 3.0;
        (lerp(0.0, 0.0, u), lerp(70.0, 200.0, u), lerp(160.0, 220.0, u))
    } else if t < 2.0 / 3.0 {
        let u = (t - 1.0 / 3.0) * 3.0;
        (lerp(0.0, 255.0, u), lerp(200.0, 220.0, u), lerp(220.0, 60.0, u))
    } else {
        let u = (t - 2.0 / 3.0) * 3.0;
        (lerp(255.0, 210.0, u), lerp(220.0, 30.0, u), lerp(60.0, 30.0, u))
    };
    (r.round() as u8, g.round() as u8, b.round() as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMap;
    use crate::solver::{solve, ThermalParams};

    fn solution() -> ThermalSolution {
        let mut m = PowerMap::new(6, 4, 1.0).unwrap();
        m.add_rect_w(2.0, 1.0, 4.0, 3.0, 10.0).unwrap();
        solve(&m, &ThermalParams::default()).unwrap()
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&solution());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per cell.
        assert_eq!(svg.matches("<rect").count(), 6 * 4);
        // The legend mentions both extremes.
        assert!(svg.contains("°C"));
    }

    #[test]
    fn ramp_endpoints_and_ordering() {
        assert_eq!(ramp(0.0), (0, 70, 160)); // cool blue
        let (r_hot, g_hot, _) = ramp(1.0);
        assert!(r_hot > 150 && g_hot < 80, "hot end must be red");
        // Out-of-range input clamps instead of panicking.
        assert_eq!(ramp(-5.0), ramp(0.0));
        assert_eq!(ramp(7.0), ramp(1.0));
    }

    #[test]
    fn hotter_cells_are_redder() {
        let s = solution();
        let hot = ramp(1.0);
        let cold = ramp(0.0);
        let svg = render(&s);
        let hot_color = format!("rgb({},{},{})", hot.0, hot.1, hot.2);
        let cold_color = format!("rgb({},{},{})", cold.0, cold.1, cold.2);
        assert!(svg.contains(&hot_color), "peak cell colour missing");
        assert!(svg.contains(&cold_color), "coolest cell colour missing");
    }
}
