//! Property tests: physical invariants of the thermal model that must hold
//! for arbitrary power maps.

use chiplet_thermal::{solve, PowerMap, ThermalParams};
use proptest::prelude::*;

/// A random small power map with a handful of rectangular heat sources.
fn arb_map() -> impl Strategy<Value = PowerMap> {
    (
        3usize..10,
        3usize..10,
        prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.1f64..0.9, 0.1f64..0.9, 0.5f64..20.0),
            1..4,
        ),
    )
        .prop_map(|(w, h, rects)| {
            let mut m = PowerMap::new(w, h, 1.0).unwrap();
            for (fx, fy, fw, fh, watts) in rects {
                let x0 = fx * (w as f64 - 1.0);
                let y0 = fy * (h as f64 - 1.0);
                let x1 = (x0 + fw * (w as f64 - x0)).min(w as f64).max(x0 + 0.1);
                let y1 = (y0 + fh * (h as f64 - y0)).min(h as f64).max(y0 + 0.1);
                m.add_rect_w(x0, y0, x1, y1, watts).unwrap();
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn temperatures_never_fall_below_ambient(map in arb_map()) {
        let p = ThermalParams::default();
        let s = solve(&map, &p).unwrap();
        for &t in s.cells() {
            prop_assert!(t >= p.ambient_c - 1e-6, "cell below ambient: {t}");
        }
    }

    #[test]
    fn global_energy_balance(map in arb_map()) {
        // In steady state all generated heat leaves through the vertical
        // path: Σ G_v·(T_i − T_amb) = Σ P_i.
        let p = ThermalParams::default();
        let s = solve(&map, &p).unwrap();
        let g_v = map.cell_mm() * map.cell_mm() / p.r_vertical_k_mm2_per_w;
        let removed: f64 = s.cells().iter().map(|t| g_v * (t - p.ambient_c)).sum();
        let generated = map.total_w();
        let rel = (removed - generated).abs() / generated.max(1e-9);
        prop_assert!(rel < 1e-3, "energy imbalance: removed {removed}, generated {generated}");
    }

    #[test]
    fn scaling_power_scales_temperature_rise(map in arb_map(), k in 1.5f64..4.0) {
        // Linearity: multiplying every source by k multiplies every rise by k.
        let p = ThermalParams::default();
        let s1 = solve(&map, &p).unwrap();
        let mut scaled = PowerMap::new(map.width(), map.height(), map.cell_mm()).unwrap();
        let (w, cell) = (map.width(), map.cell_mm());
        for (i, &pw) in map.cells().iter().enumerate() {
            if pw > 0.0 {
                let (x, y) = (i % w, i / w);
                scaled
                    .add_rect_w(
                        x as f64 * cell,
                        y as f64 * cell,
                        (x + 1) as f64 * cell,
                        (y + 1) as f64 * cell,
                        pw * k,
                    )
                    .unwrap();
            }
        }
        let s2 = solve(&scaled, &p).unwrap();
        for (a, b) in s1.cells().iter().zip(s2.cells()) {
            let rise1 = a - p.ambient_c;
            let rise2 = b - p.ambient_c;
            prop_assert!((rise2 - k * rise1).abs() < 1e-3 + 1e-3 * rise2.abs(),
                "linearity violated: {rise1} vs {rise2} (k = {k})");
        }
    }

    #[test]
    fn peak_at_least_average(map in arb_map()) {
        let s = solve(&map, &ThermalParams::default()).unwrap();
        prop_assert!(s.peak_c() >= s.average_c() - 1e-9);
    }

    #[test]
    fn more_spreading_never_raises_the_peak(map in arb_map()) {
        let weak = ThermalParams { lateral_conductance_w_per_k: 0.05, ..ThermalParams::default() };
        let strong = ThermalParams { lateral_conductance_w_per_k: 1.5, ..ThermalParams::default() };
        let s_weak = solve(&map, &weak).unwrap();
        let s_strong = solve(&map, &strong).unwrap();
        prop_assert!(s_strong.peak_c() <= s_weak.peak_c() + 1e-3,
            "spreading raised peak: {} -> {}", s_weak.peak_c(), s_strong.peak_c());
    }
}
