//! Evaluation pipeline for length-aware topologies.
//!
//! For each link: physical length (pitches × pitch-mm) → sustainable bit
//! rate from the signal-integrity model → serialization interval and
//! latency for the cycle-accurate simulator. Then: zero-load latency by
//! low-rate simulation and saturation throughput by bisection, both over
//! the heterogeneous-link network.
//!
//! This is the machinery that makes HexaMesh-vs-Kite comparisons fair: the
//! mesh and HexaMesh pay nothing (all links adjacent, full rate), while
//! express and torus links pay the derating their length incurs.

use std::collections::HashMap;
use std::fmt;

use chiplet_phy::{capacity, SignalBudget, Technology};
use nocsim::measure::{
    saturation_search_with_specs, simulated_zero_load_latency, MeasureConfig,
};
use nocsim::{LinkSpec, SaturationResult, SimConfig, SimError};
use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Options of the topology evaluation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Base simulator configuration (VCs, buffers, router latency, traffic).
    /// `link_latency` is used as the latency of every link — wire
    /// time-of-flight differences at chiplet scale are sub-cycle — while
    /// the serialization interval is derived per link.
    pub sim: SimConfig,
    /// Warmup/measurement schedule for the saturation search.
    pub schedule: MeasureConfig,
    /// Wiring technology of the package (substrate or interposer).
    pub tech: Technology,
    /// Transceiver budget for the BER analysis.
    pub signal: SignalBudget,
    /// Chiplet pitch in mm: physical length of a one-pitch link.
    pub pitch_mm: f64,
    /// Nominal per-wire bit rate in Gb/s (the paper's 16).
    pub nominal_rate_gbps: f64,
    /// BER target as `log₁₀` (the UCIe-class −15).
    pub log10_ber_target: f64,
}

impl EvalOptions {
    /// Paper-flavoured defaults over a given technology: §VI-A simulator
    /// settings, 16 Gb/s nominal rate, BER 1e−15, 4 mm pitch (a 16 mm²
    /// chiplet).
    #[must_use]
    pub fn paper_defaults(tech: Technology) -> Self {
        Self {
            sim: SimConfig::paper_defaults(),
            schedule: MeasureConfig::default(),
            tech,
            signal: SignalBudget::default(),
            pitch_mm: 4.0,
            nominal_rate_gbps: 16.0,
            log10_ber_target: -15.0,
        }
    }

    /// A faster schedule for tests and smoke runs.
    #[must_use]
    pub fn quick(tech: Technology) -> Self {
        Self { schedule: MeasureConfig::quick(), ..Self::paper_defaults(tech) }
    }
}

/// Errors from topology evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoEvalError {
    /// A link cannot run at any rate at the BER target.
    InfeasibleLink {
        /// Link endpoints.
        u: usize,
        /// Link endpoints.
        v: usize,
        /// Its physical length in mm.
        length_mm: f64,
    },
    /// The simulator rejected the configuration or topology.
    Sim(SimError),
}

impl fmt::Display for TopoEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoEvalError::InfeasibleLink { u, v, length_mm } => write!(
                f,
                "link ({u}, {v}) of {length_mm:.2} mm sustains no rate at the BER target"
            ),
            TopoEvalError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for TopoEvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopoEvalError::Sim(e) => Some(e),
            TopoEvalError::InfeasibleLink { .. } => None,
        }
    }
}

impl From<SimError> for TopoEvalError {
    fn from(e: SimError) -> Self {
        TopoEvalError::Sim(e)
    }
}

/// Physical operating point of one link after derating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkOperatingPoint {
    /// Link endpoints (`u < v`).
    pub u: usize,
    /// Upper endpoint.
    pub v: usize,
    /// Physical length in mm.
    pub length_mm: f64,
    /// Sustained per-wire bit rate in Gb/s.
    pub rate_gbps: f64,
    /// Serialization interval in router cycles (1 = full bandwidth).
    pub interval: u64,
}

/// Result of evaluating one topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoEval {
    /// Topology name.
    pub name: String,
    /// Zero-load latency in cycles (measured at 1% load).
    pub zero_load_latency: f64,
    /// Saturation point of the heterogeneous network.
    pub saturation: SaturationResult,
    /// Per-link operating points after derating.
    pub links: Vec<LinkOperatingPoint>,
    /// The slowest link's rate in Gb/s.
    pub min_rate_gbps: f64,
    /// The largest serialization interval (1 = nothing derated).
    pub max_interval: u64,
}

impl TopoEval {
    /// Fraction of links running below the nominal rate.
    #[must_use]
    pub fn derated_fraction(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        let derated = self.links.iter().filter(|l| l.interval > 1).count();
        derated as f64 / self.links.len() as f64
    }
}

/// Evaluates a topology end to end: derate every link, then simulate.
///
/// # Errors
///
/// * [`TopoEvalError::InfeasibleLink`] if some link sustains no rate at the
///   BER target (its length exceeds the technology's reach);
/// * [`TopoEvalError::Sim`] for simulator construction failures
///   (disconnected topology, bad configuration).
pub fn evaluate(topo: &Topology, opts: &EvalOptions) -> Result<TopoEval, TopoEvalError> {
    let mut links = Vec::with_capacity(topo.edges().len());
    let mut spec_by_pair: HashMap<(usize, usize), LinkSpec> = HashMap::new();
    for e in topo.edges() {
        let length_mm = e.length_pitch * opts.pitch_mm;
        let rate = capacity::derated_bit_rate_gbps(
            &opts.tech,
            &opts.signal,
            length_mm,
            opts.nominal_rate_gbps,
            opts.log10_ber_target,
        );
        if rate <= 0.0 {
            return Err(TopoEvalError::InfeasibleLink { u: e.u, v: e.v, length_mm });
        }
        // A flit that crosses a full-rate link in one cycle needs
        // nominal/rate cycles on a derated one.
        let interval = (opts.nominal_rate_gbps / rate).ceil().max(1.0) as u64;
        links.push(LinkOperatingPoint { u: e.u, v: e.v, length_mm, rate_gbps: rate, interval });
        spec_by_pair.insert((e.u, e.v), LinkSpec { latency: opts.sim.link_latency, interval });
    }

    let spec = |a: usize, b: usize| -> LinkSpec {
        let key = if a < b { (a, b) } else { (b, a) };
        spec_by_pair.get(&key).copied().unwrap_or(LinkSpec::uniform(opts.sim.link_latency))
    };

    let zero_load = simulated_zero_load_latency(topo.graph(), &opts.sim, spec)?;
    let saturation =
        saturation_search_with_specs(topo.graph(), &opts.sim, &opts.schedule, spec, zero_load)?;

    let min_rate_gbps =
        links.iter().map(|l| l.rate_gbps).fold(opts.nominal_rate_gbps, f64::min);
    let max_interval = links.iter().map(|l| l.interval).max().unwrap_or(1);
    Ok(TopoEval {
        name: topo.name().to_owned(),
        zero_load_latency: zero_load,
        saturation,
        links,
        min_rate_gbps,
        max_interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::express::{express, ExpressOptions};
    use crate::generators::{ftorus, mesh};

    fn quick_opts() -> EvalOptions {
        let mut o = EvalOptions::quick(Technology::organic_substrate());
        o.sim.vcs = 4;
        o.sim.buffer_depth = 4;
        o
    }

    #[test]
    fn mesh_runs_at_full_rate() {
        // 4 mm pitch on substrate: adjacent links are within reach.
        let result = evaluate(&mesh(3, 3), &quick_opts()).unwrap();
        assert_eq!(result.max_interval, 1);
        assert_eq!(result.min_rate_gbps, 16.0);
        assert_eq!(result.derated_fraction(), 0.0);
        assert!(result.zero_load_latency > 0.0);
        assert!(result.saturation.throughput > 0.0);
    }

    #[test]
    fn express_links_get_derated() {
        // Three-pitch express links (12 mm) are far beyond the substrate's
        // ~4.5 mm reach at 16 Gb/s: they must run slower.
        let kite = express(4, 4, &ExpressOptions::default()).unwrap();
        let result = evaluate(&kite, &quick_opts()).unwrap();
        assert!(result.max_interval > 1, "no link derated");
        assert!(result.min_rate_gbps < 16.0);
        assert!(result.derated_fraction() > 0.0);
    }

    #[test]
    fn interposer_mesh_at_wide_pitch_is_infeasible() {
        // A 4 mm pitch exceeds the interposer's ~2 mm reach: adjacent links
        // still run (derated), but only because derating can slow them.
        // Push the pitch beyond even that.
        let mut opts = quick_opts();
        opts.tech = Technology::silicon_interposer();
        opts.signal.rx_noise_sigma_v = 0.2; // hopeless noise: no feasible rate
        let err = evaluate(&mesh(2, 2), &opts).unwrap_err();
        assert!(matches!(err, TopoEvalError::InfeasibleLink { .. }), "{err}");
    }

    #[test]
    fn ftorus_trades_latency_for_derating() {
        let opts = quick_opts();
        let m = evaluate(&mesh(3, 3), &opts).unwrap();
        let ft = evaluate(&ftorus(3, 3), &opts).unwrap();
        // Two-pitch links (8 mm) on a 4 mm-pitch substrate are derated.
        assert!(ft.max_interval > 1);
        // The torus still delivers packets and a positive saturation point.
        assert!(ft.saturation.throughput > 0.0);
        assert!(m.saturation.throughput > 0.0);
    }

    #[test]
    fn shrinking_the_pitch_removes_derating() {
        // At a 1 mm pitch even 3-pitch express links are 3 mm — within the
        // substrate's reach, so nothing is derated.
        let kite = express(4, 4, &ExpressOptions::default()).unwrap();
        let mut opts = quick_opts();
        opts.pitch_mm = 1.0;
        let result = evaluate(&kite, &opts).unwrap();
        assert_eq!(result.max_interval, 1);
        assert_eq!(result.derated_fraction(), 0.0);
    }
}
