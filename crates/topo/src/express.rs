//! Kite-style express-link meshes.
//!
//! Kite (Bharadwaj et al., DAC 2020 — the paper’s related work \[15\])
//! searches for interposer topologies that augment a grid arrangement with
//! links between *non-adjacent* chiplets, accepting the frequency penalty
//! of longer wires when the hop-count savings outweigh it. The published
//! Kite topologies are search results for specific grid sizes, so this
//! module provides a documented reconstruction rather than a verbatim copy:
//! starting from the mesh, it greedily inserts the express link that most
//! reduces the total pairwise hop distance, subject to
//!
//! * a per-router port budget (PHY area is finite — §IV-B's bump-sector
//!   argument applies to Kite routers too), and
//! * a length cap in pitches (beyond the signal-integrity reach, a link is
//!   pointless at any frequency).
//!
//! The greedy objective mirrors Kite's goal (minimise average hops); the
//! frequency penalty is charged later by [`crate::eval`], not here.

use chiplet_graph::{bfs, Graph, GraphBuilder};

use crate::generators::mesh;
use crate::topology::{Topology, TopologyError};

/// Parameters of the express-link search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpressOptions {
    /// Maximum routed (Manhattan) link length in pitches.
    pub max_length_pitch: f64,
    /// Maximum router degree after augmentation (mesh interior routers
    /// start at 4).
    pub port_budget: usize,
    /// Maximum number of express links to insert.
    pub max_links: usize,
}

impl Default for ExpressOptions {
    /// Kite-like defaults: links up to three pitches, six ports per router
    /// (the planar-graph average-degree optimum of §IV-A), and as many
    /// links as the budgets allow.
    fn default() -> Self {
        Self { max_length_pitch: 3.0, port_budget: 6, max_links: usize::MAX }
    }
}

/// Builds a Kite-style express mesh over an `R × C` grid arrangement.
///
/// # Errors
///
/// Returns [`TopologyError`] only if the internal edge bookkeeping breaks
/// (not expected for valid inputs).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn express(
    rows: usize,
    cols: usize,
    opts: &ExpressOptions,
) -> Result<Topology, TopologyError> {
    assert!(rows > 0 && cols > 0, "express mesh needs at least one row and column");
    let base = mesh(rows, cols);
    let n = rows * cols;
    let coords = |v: usize| (v / cols, v % cols);

    let mut edges: Vec<(usize, usize, f64)> =
        base.edges().iter().map(|e| (e.u, e.v, e.length_pitch)).collect();
    let mut degrees: Vec<usize> = (0..n).map(|v| base.graph().degree(v)).collect();

    // Candidate express links: all pairs at Manhattan distance 2..=cap.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let (ur, uc) = coords(u);
            let (vr, vc) = coords(v);
            let manhattan = (ur.abs_diff(vr) + uc.abs_diff(vc)) as f64;
            if manhattan >= 2.0 && manhattan <= opts.max_length_pitch {
                candidates.push((u, v, manhattan));
            }
        }
    }

    let mut inserted = 0;
    while inserted < opts.max_links {
        let current = graph_from(n, &edges);
        let base_cost = total_pairwise_distance(&current);
        let mut best: Option<(usize, usize, f64, u64)> = None;
        for &(u, v, len) in &candidates {
            if degrees[u] >= opts.port_budget || degrees[v] >= opts.port_budget {
                continue;
            }
            if current.has_edge(u, v) {
                continue;
            }
            let mut trial = edges.clone();
            trial.push((u, v, len));
            let cost = total_pairwise_distance(&graph_from(n, &trial));
            if cost < base_cost {
                let better = match best {
                    Some((.., best_cost)) => {
                        cost < best_cost
                            // Tie-break: prefer the shorter wire.
                            || (cost == best_cost && len < best_len(&best))
                    }
                    None => true,
                };
                if better {
                    best = Some((u, v, len, cost));
                }
            }
        }
        match best {
            Some((u, v, len, _)) => {
                edges.push((u, v, len));
                degrees[u] += 1;
                degrees[v] += 1;
                inserted += 1;
            }
            None => break, // no candidate improves the objective
        }
    }

    Topology::new(format!("express_{rows}x{cols}"), n, edges)
}

fn best_len(best: &Option<(usize, usize, f64, u64)>) -> f64 {
    best.map_or(f64::INFINITY, |(_, _, len, _)| len)
}

fn graph_from(n: usize, edges: &[(usize, usize, f64)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, _) in edges {
        b.add_edge(u, v).expect("edge endpoints validated upstream");
    }
    b.build()
}

/// Sum of BFS distances over all ordered vertex pairs.
fn total_pairwise_distance(g: &Graph) -> u64 {
    let mut total = 0u64;
    for src in 0..g.num_vertices() {
        for d in bfs::distances(g, src) {
            if d != u32::MAX {
                total += u64::from(d);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::metrics;

    #[test]
    fn express_improves_average_distance() {
        let plain = mesh(4, 4);
        let kite = express(4, 4, &ExpressOptions::default()).unwrap();
        let d_plain = metrics::average_distance(plain.graph()).unwrap();
        let d_kite = metrics::average_distance(kite.graph()).unwrap();
        assert!(d_kite < d_plain, "express {d_kite} !< mesh {d_plain}");
    }

    #[test]
    fn express_respects_port_budget() {
        let opts = ExpressOptions { port_budget: 5, ..ExpressOptions::default() };
        let kite = express(4, 4, &opts).unwrap();
        for v in 0..kite.num_routers() {
            assert!(kite.graph().degree(v) <= 5, "router {v} over budget");
        }
    }

    #[test]
    fn express_respects_length_cap() {
        let opts = ExpressOptions { max_length_pitch: 2.0, ..ExpressOptions::default() };
        let kite = express(4, 4, &opts).unwrap();
        assert!(kite.max_length_pitch() <= 2.0);
        // Express links exist at all.
        assert!(kite.graph().num_edges() > mesh(4, 4).graph().num_edges());
    }

    #[test]
    fn express_respects_link_quota() {
        let base_edges = mesh(4, 4).graph().num_edges();
        let opts = ExpressOptions { max_links: 3, ..ExpressOptions::default() };
        let kite = express(4, 4, &opts).unwrap();
        assert_eq!(kite.graph().num_edges(), base_edges + 3);
    }

    #[test]
    fn zero_quota_returns_the_mesh() {
        let opts = ExpressOptions { max_links: 0, ..ExpressOptions::default() };
        let kite = express(3, 3, &opts).unwrap();
        assert_eq!(kite.graph().num_edges(), mesh(3, 3).graph().num_edges());
    }

    #[test]
    fn tiny_grids_have_no_candidates() {
        // A 1x2 grid has no pair at Manhattan distance >= 2.
        let kite = express(1, 2, &ExpressOptions::default()).unwrap();
        assert_eq!(kite.graph().num_edges(), 1);
    }
}
