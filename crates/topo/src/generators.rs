//! Baseline topology generators over an `R × C` grid arrangement.
//!
//! Router ids are row-major: router `(r, c)` has id `r·C + c`.

use crate::topology::Topology;

/// The adjacent-only 2D mesh (the paper's implicit grid ICI, and Tesla
/// Dojo's choice per §VII): links between horizontal and vertical
/// neighbours, each one pitch long.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
#[must_use]
pub fn mesh(rows: usize, cols: usize) -> Topology {
    assert!(rows > 0 && cols > 0, "mesh needs at least one row and column");
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), 1.0));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), 1.0));
            }
        }
    }
    Topology::new(format!("mesh_{rows}x{cols}"), rows * cols, edges)
        .expect("mesh edges are well formed")
}

/// The folded torus: every row and column closed into a ring, wired in the
/// standard folded (interleaved) pattern so that ring links span at most
/// two pitches. One of the long-link families the Kite work (related work
/// \[15\]) evaluates against.
///
/// Rows or columns of length 2 degenerate to a single mesh link (a
/// "ring" of two vertices has one edge).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
#[must_use]
pub fn ftorus(rows: usize, cols: usize) -> Topology {
    assert!(rows > 0 && cols > 0, "folded torus needs at least one row and column");
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    // Rows: the folded ring over `cols` positions.
    for r in 0..rows {
        for (a, b, len) in folded_ring(cols) {
            edges.push((id(r, a), id(r, b), len));
        }
    }
    // Columns: the folded ring over `rows` positions.
    for c in 0..cols {
        for (a, b, len) in folded_ring(rows) {
            edges.push((id(a, c), id(b, c), len));
        }
    }
    Topology::new(format!("ftorus_{rows}x{cols}"), rows * cols, edges)
        .expect("folded torus edges are well formed")
}

/// The edges of a folded ring over `n` linearly placed positions:
/// skip-links `i → i+2` (two pitches) plus the two end turnbacks
/// `0 → 1` and `n−2 → n−1` (one pitch), forming a single cycle that no
/// wire longer than two pitches.
fn folded_ring(n: usize) -> Vec<(usize, usize, f64)> {
    match n {
        0 | 1 => Vec::new(),
        2 => vec![(0, 1, 1.0)],
        _ => {
            let mut edges: Vec<(usize, usize, f64)> =
                (0..n - 2).map(|i| (i, i + 2, 2.0)).collect();
            edges.push((0, 1, 1.0));
            edges.push((n - 2, n - 1, 1.0));
            edges
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::metrics;

    #[test]
    fn mesh_counts_and_lengths() {
        let m = mesh(3, 4);
        assert_eq!(m.num_routers(), 12);
        // 3 rows × 3 horizontal + 4 cols × 2 vertical = 9 + 8 = 17.
        assert_eq!(m.graph().num_edges(), 17);
        assert_eq!(m.max_length_pitch(), 1.0);
        assert!(metrics::is_connected(m.graph()));
    }

    #[test]
    fn mesh_single_row_is_a_path() {
        let m = mesh(1, 5);
        assert_eq!(m.graph().num_edges(), 4);
        assert_eq!(metrics::diameter(m.graph()), Some(4));
    }

    #[test]
    fn folded_ring_is_a_cycle() {
        for n in 3..10 {
            let edges = folded_ring(n);
            assert_eq!(edges.len(), n, "a ring over {n} has {n} edges");
            let t = Topology::new("ring", n, edges).unwrap();
            assert!(metrics::is_connected(t.graph()));
            // Every vertex has degree exactly 2.
            for v in 0..n {
                assert_eq!(t.graph().degree(v), 2, "vertex {v} of ring {n}");
            }
            assert_eq!(t.max_length_pitch(), 2.0);
        }
    }

    #[test]
    fn ftorus_has_degree_four_and_shorter_diameter() {
        let ft = ftorus(4, 4);
        let m = mesh(4, 4);
        assert!(metrics::is_connected(ft.graph()));
        for v in 0..16 {
            assert_eq!(ft.graph().degree(v), 4);
        }
        let d_ft = metrics::diameter(ft.graph()).unwrap();
        let d_m = metrics::diameter(m.graph()).unwrap();
        assert!(d_ft < d_m, "ftorus {d_ft} !< mesh {d_m}");
        assert_eq!(ft.max_length_pitch(), 2.0);
    }

    #[test]
    fn ftorus_degenerate_sizes() {
        let ft = ftorus(2, 2);
        // Each row/col ring of 2 contributes 1 edge: 2 rows + 2 cols = 4.
        assert_eq!(ft.graph().num_edges(), 4);
        assert_eq!(ft.max_length_pitch(), 1.0);
        let line = ftorus(1, 4);
        assert!(metrics::is_connected(line.graph()));
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn mesh_rejects_empty() {
        let _ = mesh(0, 3);
    }
}
