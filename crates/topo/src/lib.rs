//! Inter-chiplet interconnect topologies with *physical* link lengths.
//!
//! HexaMesh's design rule is to connect only adjacent chiplets, so every
//! link stays short and runs at full frequency (§I, §V). The alternative
//! school — Kite (Bharadwaj et al., DAC 2020), cited as related work \[15\] —
//! connects *non-adjacent* chiplets on a grid arrangement when the
//! topological benefit of a longer link outweighs its frequency penalty.
//! Comparing the two fairly requires carrying each link's length through
//! the evaluation, which this crate does:
//!
//! * [`Topology`] — a router graph whose every link knows its length in
//!   chiplet pitches;
//! * [`mesh`] — the adjacent-only baseline (all links one pitch);
//! * [`ftorus`] — the folded torus: row/column rings wired with
//!   two-pitch links;
//! * [`mod@express`] — Kite-style meshes augmented with greedily chosen
//!   express links under a port budget and a length cap;
//! * [`eval`] — the evaluation pipeline: per-link frequency derating via
//!   [`chiplet_phy`], heterogeneous-link cycle-accurate simulation via
//!   [`nocsim`], zero-load latency and saturation throughput out.
//!
//! # Example
//!
//! ```
//! use chiplet_topo::{express, mesh};
//!
//! let plain = mesh(4, 4);
//! let kite = express(4, 4, &express::ExpressOptions::default()).unwrap();
//! // Express links buy average-distance reductions ...
//! assert!(kite.graph().num_edges() > plain.graph().num_edges());
//! // ... at the price of longer wires.
//! assert!(kite.max_length_pitch() > plain.max_length_pitch());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod express;
pub mod generators;
pub mod topology;

pub use eval::{evaluate, EvalOptions, TopoEval, TopoEvalError};
pub use express::express;
pub use generators::{ftorus, mesh};
pub use topology::{LinkEdge, Topology, TopologyError};
