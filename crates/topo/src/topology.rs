//! The [`Topology`] type: a router graph with per-link physical lengths.

use std::collections::HashMap;
use std::fmt;

use chiplet_graph::{Graph, GraphBuilder};
use serde::{Deserialize, Serialize};

/// One undirected link with its physical length in chiplet pitches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEdge {
    /// Lower endpoint (router id).
    pub u: usize,
    /// Upper endpoint (router id), `u < v`.
    pub v: usize,
    /// Physical (routed) length in units of the chiplet pitch, > 0.
    pub length_pitch: f64,
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// An edge references a router id `>= num_routers`.
    VertexOutOfRange {
        /// The offending endpoint id.
        vertex: usize,
        /// Number of routers in the topology.
        num_routers: usize,
    },
    /// An edge connects a router to itself.
    SelfLoop(usize),
    /// The same router pair appears twice.
    DuplicateEdge(usize, usize),
    /// A link length was zero, negative, or non-finite.
    InvalidLength(usize, usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::VertexOutOfRange { vertex, num_routers } => {
                write!(f, "vertex {vertex} out of range for {num_routers} routers")
            }
            TopologyError::SelfLoop(v) => write!(f, "self loop at router {v}"),
            TopologyError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            TopologyError::InvalidLength(u, v) => {
                write!(f, "edge ({u}, {v}) needs a positive, finite length")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A named router topology whose links carry physical lengths.
///
/// Lengths are in units of the chiplet pitch; multiply by the pitch in mm
/// (from the arrangement's chiplet shape) to get wire lengths for the
/// signal-integrity model.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    num_routers: usize,
    edges: Vec<LinkEdge>,
    graph: Graph,
    length_by_pair: HashMap<(usize, usize), f64>,
}

impl Topology {
    /// Builds a topology from an undirected edge list. Edges are normalised
    /// to `u < v`; order is preserved otherwise.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self loops, duplicate pairs, and
    /// non-positive or non-finite lengths.
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_topo::Topology;
    ///
    /// // A triangle with one two-pitch chord.
    /// let t = Topology::new("tri", 3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])?;
    /// assert_eq!(t.length_of(2, 0), Some(2.0));
    /// assert_eq!(t.max_degree(), 2);
    /// # Ok::<(), chiplet_topo::TopologyError>(())
    /// ```
    pub fn new(
        name: impl Into<String>,
        num_routers: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, TopologyError> {
        let mut normalised = Vec::new();
        let mut length_by_pair = HashMap::new();
        let mut builder = GraphBuilder::new(num_routers);
        for (a, b, length) in edges {
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            for w in [u, v] {
                if w >= num_routers {
                    return Err(TopologyError::VertexOutOfRange { vertex: w, num_routers });
                }
            }
            if !length.is_finite() || length <= 0.0 {
                return Err(TopologyError::InvalidLength(u, v));
            }
            if length_by_pair.insert((u, v), length).is_some() {
                return Err(TopologyError::DuplicateEdge(u, v));
            }
            normalised.push(LinkEdge { u, v, length_pitch: length });
            builder.add_edge(u, v).expect("validated endpoints");
        }
        Ok(Self {
            name: name.into(),
            num_routers,
            edges: normalised,
            graph: builder.build(),
            length_by_pair,
        })
    }

    /// Topology name (used in reports and CSV output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of routers.
    #[must_use]
    pub fn num_routers(&self) -> usize {
        self.num_routers
    }

    /// The undirected edges with lengths.
    #[must_use]
    pub fn edges(&self) -> &[LinkEdge] {
        &self.edges
    }

    /// The router graph (lengths stripped).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Length in pitches of the link between `u` and `v`, if present.
    #[must_use]
    pub fn length_of(&self, u: usize, v: usize) -> Option<f64> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.length_by_pair.get(&key).copied()
    }

    /// The longest link in pitches (0.0 for an edgeless topology).
    #[must_use]
    pub fn max_length_pitch(&self) -> f64 {
        self.edges.iter().map(|e| e.length_pitch).fold(0.0, f64::max)
    }

    /// Mean link length in pitches (`None` for an edgeless topology).
    #[must_use]
    pub fn avg_length_pitch(&self) -> Option<f64> {
        if self.edges.is_empty() {
            return None;
        }
        Some(self.edges.iter().map(|e| e.length_pitch).sum::<f64>() / self.edges.len() as f64)
    }

    /// Highest router degree (0 for an edgeless topology).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.num_routers).map(|v| self.graph.degree(v)).max().unwrap_or(0)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} routers, {} links, max length {:.1} pitch)",
            self.name,
            self.num_routers,
            self.edges.len(),
            self.max_length_pitch()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_normalises_edges() {
        let t = Topology::new("t", 3, [(2, 0, 1.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(t.edges()[0], LinkEdge { u: 0, v: 2, length_pitch: 1.0 });
        assert_eq!(t.length_of(2, 1), Some(2.0));
        assert_eq!(t.length_of(1, 2), Some(2.0));
        assert_eq!(t.length_of(0, 1), None);
        assert_eq!(t.graph().num_edges(), 2);
    }

    #[test]
    fn rejects_malformed_edges() {
        assert_eq!(
            Topology::new("t", 2, [(0, 0, 1.0)]).unwrap_err(),
            TopologyError::SelfLoop(0)
        );
        assert!(matches!(
            Topology::new("t", 2, [(0, 5, 1.0)]).unwrap_err(),
            TopologyError::VertexOutOfRange { vertex: 5, .. }
        ));
        assert_eq!(
            Topology::new("t", 3, [(0, 1, 1.0), (1, 0, 2.0)]).unwrap_err(),
            TopologyError::DuplicateEdge(0, 1)
        );
        assert_eq!(
            Topology::new("t", 2, [(0, 1, 0.0)]).unwrap_err(),
            TopologyError::InvalidLength(0, 1)
        );
        assert_eq!(
            Topology::new("t", 2, [(0, 1, f64::NAN)]).unwrap_err(),
            TopologyError::InvalidLength(0, 1)
        );
    }

    #[test]
    fn length_statistics() {
        let t = Topology::new("t", 4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        assert_eq!(t.max_length_pitch(), 3.0);
        assert_eq!(t.avg_length_pitch(), Some(2.0));
        assert_eq!(t.max_degree(), 2);
        let empty = Topology::new("e", 2, []).unwrap();
        assert_eq!(empty.max_length_pitch(), 0.0);
        assert_eq!(empty.avg_length_pitch(), None);
        assert_eq!(empty.max_degree(), 0);
    }

    #[test]
    fn display_summarises() {
        let t = Topology::new("demo", 3, [(0, 1, 1.0), (1, 2, 2.5)]).unwrap();
        let s = t.to_string();
        assert!(s.contains("demo") && s.contains("3 routers") && s.contains("2.5"), "{s}");
    }
}
