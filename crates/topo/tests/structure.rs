//! Property tests for topology generators: structural invariants that must
//! hold for every grid size.

use chiplet_graph::metrics;
use chiplet_topo::express::ExpressOptions;
use chiplet_topo::{express, ftorus, mesh};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mesh_structure(rows in 1usize..7, cols in 1usize..7) {
        let m = mesh(rows, cols);
        prop_assert_eq!(m.num_routers(), rows * cols);
        prop_assert_eq!(
            m.graph().num_edges(),
            rows * (cols - 1) + cols * (rows - 1)
        );
        prop_assert!(metrics::is_connected(m.graph()) || rows * cols == 1);
        prop_assert_eq!(m.max_length_pitch(), if m.graph().num_edges() > 0 { 1.0 } else { 0.0 });
        // Mesh diameter: (rows-1) + (cols-1).
        if rows * cols > 0 {
            prop_assert_eq!(
                metrics::diameter(m.graph()),
                Some((rows + cols - 2) as u32)
            );
        }
    }

    #[test]
    fn ftorus_structure(rows in 3usize..7, cols in 3usize..7) {
        let ft = ftorus(rows, cols);
        prop_assert!(metrics::is_connected(ft.graph()));
        // A torus is 4-regular.
        for v in 0..ft.num_routers() {
            prop_assert_eq!(ft.graph().degree(v), 4);
        }
        // Folded wiring keeps every wire within two pitches.
        prop_assert!(ft.max_length_pitch() <= 2.0);
        // Torus edge count: 2·R·C.
        prop_assert_eq!(ft.graph().num_edges(), 2 * rows * cols);
        // Torus diameter: ⌊R/2⌋ + ⌊C/2⌋.
        prop_assert_eq!(
            metrics::diameter(ft.graph()),
            Some((rows / 2 + cols / 2) as u32)
        );
    }

    #[test]
    fn express_contains_the_mesh_and_beats_it(rows in 2usize..6, cols in 2usize..6) {
        let opts = ExpressOptions { max_links: 4, ..ExpressOptions::default() };
        let m = mesh(rows, cols);
        let x = express(rows, cols, &opts).unwrap();
        // Every mesh link survives in the express topology.
        for e in m.edges() {
            prop_assert_eq!(x.length_of(e.u, e.v), Some(1.0));
        }
        prop_assert!(metrics::is_connected(x.graph()));
        // Express never hurts the average distance.
        let d_mesh = metrics::average_distance(m.graph());
        let d_x = metrics::average_distance(x.graph());
        if let (Some(dm), Some(dx)) = (d_mesh, d_x) {
            prop_assert!(dx <= dm + 1e-12, "express {dx} > mesh {dm}");
        }
        // Degrees within budget, lengths within cap.
        for v in 0..x.num_routers() {
            prop_assert!(x.graph().degree(v) <= opts.port_budget);
        }
        prop_assert!(x.max_length_pitch() <= opts.max_length_pitch.max(1.0));
    }
}
