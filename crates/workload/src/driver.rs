//! The closed-loop workload driver: executes a message DAG on a `nocsim`
//! simulator.
//!
//! The driver offers a message to its source endpoint when every
//! dependency has been delivered (plus the compute delay), retires it on
//! tail-flit delivery, and unlocks its dependents — so congestion feeds
//! back into the offered load, unlike memoryless synthetic injection.
//!
//! The event-driven fast path is preserved: the driver paces the
//! simulator with [`nocsim::Simulator::run_until_deliveries`], waking
//! only at dependency resolutions (deliveries) and at its own scheduled
//! injection times; idle stretches between them fast-forward inside the
//! simulator. All driver state is preallocated at construction
//! (dependents in CSR form, the ready heap and blocked queue at message
//! capacity), so steady-state execution performs no heap allocation —
//! the same contract the simulator's hot path holds, pinned by
//! `tests/alloc_steady_state.rs`.
//!
//! Determinism: given `(workload, topology, SimConfig)` the run is a
//! pure function — offers happen in `(ready time, message id)` order,
//! and all per-delivery updates are order-independent within a cycle —
//! so statistics are bit-identical across worker counts and under
//! [`nocsim::Simulator::set_reference_stepping`] (pinned by
//! `tests/determinism.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use chiplet_graph::{bfs, Graph};
use nocsim::sim::Delivery;
use nocsim::{NetworkStats, SimConfig, SimError, Simulator};

use crate::ir::{MsgId, Workload, WorkloadError};

/// Errors from driver construction.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The workload failed validation.
    Workload(WorkloadError),
    /// The simulator rejected the configuration.
    Sim(SimError),
    /// The workload addresses a different endpoint count than the
    /// topology provides.
    EndpointMismatch {
        /// Endpoints the workload addresses.
        workload: usize,
        /// Endpoints the topology provides.
        sim: usize,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Workload(e) => write!(f, "workload: {e}"),
            DriverError::Sim(e) => write!(f, "simulator: {e}"),
            DriverError::EndpointMismatch { workload, sim } => write!(
                f,
                "workload addresses {workload} endpoints but the topology provides {sim}"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<WorkloadError> for DriverError {
    fn from(e: WorkloadError) -> Self {
        DriverError::Workload(e)
    }
}

impl From<SimError> for DriverError {
    fn from(e: SimError) -> Self {
        DriverError::Sim(e)
    }
}

/// Application-level results of a workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// `true` once every message was delivered (a `false` means the cycle
    /// budget ran out or a deadlock was suspected).
    pub completed: bool,
    /// Cycle of the last delivery — the application completion time the
    /// `workload_comparison` ranking uses.
    pub makespan: u64,
    /// Messages delivered so far.
    pub delivered_messages: u64,
    /// Total payload delivered so far, in flits.
    pub delivered_flits: u64,
    /// Analytic zero-load critical path of the DAG on this topology:
    /// the longest dependency chain, each message costed at its
    /// contention-free latency. `makespan / critical_path` ≥ 1 measures
    /// the congestion (and serialization) overhead the arrangement adds.
    pub critical_path_cycles: u64,
    /// Completion cycle of each phase tag, in tag order — per-collective
    /// (step / iteration / microbatch / round) completion times. `None`
    /// while any of the tag's messages is still undelivered (possible
    /// only on incomplete runs).
    pub per_tag_completion: Vec<(u32, Option<u64>)>,
    /// The simulator's aggregate view of the run (latencies, throughput,
    /// source-queue occupancy; the measurement window spans the whole
    /// run).
    pub network: NetworkStats,
}

/// Per-message static data, flattened from the IR for the hot loop.
#[derive(Debug, Clone, Copy)]
struct MsgMeta {
    src: usize,
    dest: usize,
    size_flits: usize,
    compute_delay: u64,
    tag: u32,
}

/// Executes one [`Workload`] on one simulator instance.
#[derive(Debug)]
pub struct WorkloadDriver {
    sim: Simulator,
    msgs: Vec<MsgMeta>,
    /// CSR of the dependency graph's forward edges: message m's
    /// dependents are `dep_targets[dep_offsets[m]..dep_offsets[m + 1]]`.
    dep_offsets: Vec<u32>,
    dep_targets: Vec<u32>,
    /// Unresolved dependency count per message.
    remaining: Vec<u32>,
    /// Messages whose dependencies resolved, keyed by injection
    /// eligibility cycle; ties pop in message-id order.
    ready: BinaryHeap<Reverse<(u64, MsgId)>>,
    /// Eligible messages not yet accepted by their source queue, in
    /// offer order (per-endpoint order is preserved across refusals).
    blocked: VecDeque<MsgId>,
    /// Epoch marks: endpoint e refused an offer during pass `epoch`.
    endpoint_full: Vec<u64>,
    epoch: u64,
    /// Packet id → message id (offers are the only packet source).
    /// Ids are endpoint-strided, not dense, so this is a map.
    packet_msgs: HashMap<u64, MsgId>,
    /// Delivery cycle per message (`u64::MAX` until delivered).
    completion: Vec<u64>,
    /// Reused drain buffer for the simulator's delivery log.
    deliveries: Vec<Delivery>,
    /// Max delivery cycle per phase tag (index = tag), meaningful once
    /// the tag's `tag_done` count reaches its `tag_total`.
    tag_completion: Vec<u64>,
    /// Messages per phase tag / delivered so far per phase tag.
    tag_total: Vec<u32>,
    tag_done: Vec<u32>,
    delivered: usize,
    delivered_flits: u64,
    makespan: u64,
    critical_path: u64,
}

impl WorkloadDriver {
    /// Builds a driver for `workload` on the router graph `g`.
    ///
    /// `config.injection_rate` is forced to zero — the workload is the
    /// only packet source — and the measurement window opens at cycle 0,
    /// so every delivered message is latency-measured.
    ///
    /// # Errors
    ///
    /// [`DriverError`] when the workload is invalid, the endpoint counts
    /// disagree, or the simulator rejects the configuration.
    pub fn new(g: &Graph, config: SimConfig, workload: &Workload) -> Result<Self, DriverError> {
        workload.validate()?;
        let mut config = config;
        config.injection_rate = 0.0;
        let mut sim = Simulator::new(g, config)?;
        if sim.num_endpoints() != workload.num_endpoints {
            return Err(DriverError::EndpointMismatch {
                workload: workload.num_endpoints,
                sim: sim.num_endpoints(),
            });
        }
        sim.set_delivery_log(true);
        sim.open_measurement_window();

        let n = workload.len();
        let msgs: Vec<MsgMeta> = workload
            .messages
            .iter()
            .map(|m| MsgMeta {
                src: m.src,
                dest: m.dest,
                size_flits: m.size_flits,
                compute_delay: m.compute_delay,
                tag: m.tag,
            })
            .collect();

        // Forward (dependents) edges in CSR form.
        let mut dep_offsets = vec![0u32; n + 1];
        for m in &workload.messages {
            for &d in &m.deps {
                dep_offsets[d + 1] += 1;
            }
        }
        for i in 0..n {
            dep_offsets[i + 1] += dep_offsets[i];
        }
        let mut fill = dep_offsets.clone();
        let mut dep_targets = vec![0u32; dep_offsets[n] as usize];
        for (id, m) in workload.messages.iter().enumerate() {
            for &d in &m.deps {
                dep_targets[fill[d] as usize] = id as u32;
                fill[d] += 1;
            }
        }

        let remaining: Vec<u32> =
            workload.messages.iter().map(|m| m.deps.len() as u32).collect();
        let mut ready = BinaryHeap::with_capacity(n);
        for (id, m) in workload.messages.iter().enumerate() {
            if m.deps.is_empty() {
                ready.push(Reverse((m.compute_delay, id)));
            }
        }

        let max_tag = workload.messages.iter().map(|m| m.tag).max().unwrap_or(0);
        let mut tag_total = vec![0u32; max_tag as usize + 1];
        for m in &workload.messages {
            tag_total[m.tag as usize] += 1;
        }
        let critical_path =
            critical_path_cycles(g, &config, workload, &dep_offsets, &dep_targets, &remaining);
        let num_endpoints = sim.num_endpoints();
        Ok(Self {
            sim,
            msgs,
            dep_offsets,
            dep_targets,
            remaining,
            ready,
            blocked: VecDeque::with_capacity(n),
            endpoint_full: vec![0; num_endpoints],
            epoch: 0,
            packet_msgs: HashMap::with_capacity(n),
            completion: vec![u64::MAX; n],
            deliveries: Vec::with_capacity(num_endpoints),
            tag_completion: vec![0; max_tag as usize + 1],
            tag_done: vec![0; tag_total.len()],
            tag_total,
            delivered: 0,
            delivered_flits: 0,
            makespan: 0,
            critical_path,
        })
    }

    /// Forces (or lifts) the simulator's poll-every-cycle reference
    /// stepping — the driver's behaviour is bit-identical either way
    /// (the golden-determinism tests rely on this switch).
    pub fn set_reference_stepping(&mut self, on: bool) {
        self.sim.set_reference_stepping(on);
    }

    /// The underlying simulator (read-only).
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Installs a fault plan on the underlying simulator. Must be called
    /// before the first [`advance`](Self::advance). Pair with
    /// [`nocsim::RetransmitConfig`] when the workload must complete on a
    /// degraded-but-connected network: without retransmission a flit lost
    /// to a fault retires its message as undeliverable and the run stalls.
    pub fn install_fault_plan(&mut self, plan: nocsim::FaultPlan) {
        self.sim.install_fault_plan(plan);
    }

    /// `true` once every message has been delivered.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.delivered == self.msgs.len()
    }

    /// Runs for at most `budget` further cycles, returning `true` once
    /// the workload is complete. Steady-state allocation-free; bails out
    /// early when the simulator suspects a deadlock.
    pub fn advance(&mut self, budget: u64) -> bool {
        let deadline = self.sim.cycle().saturating_add(budget);
        while self.delivered < self.msgs.len() && self.sim.cycle() < deadline {
            let now = self.sim.cycle();
            // Eligible messages move into the offer queue in
            // (ready time, id) order.
            while let Some(&Reverse((t, m))) = self.ready.peek() {
                if t > now {
                    break;
                }
                self.ready.pop();
                self.blocked.push_back(m);
            }
            // One offer pass. A refusal parks every later message of the
            // same endpoint for this pass, preserving per-endpoint order.
            self.epoch += 1;
            for _ in 0..self.blocked.len() {
                let m = self.blocked.pop_front().expect("counted");
                let meta = self.msgs[m];
                if self.endpoint_full[meta.src] == self.epoch {
                    self.blocked.push_back(m);
                    continue;
                }
                match self.sim.offer_packet(meta.src, meta.dest, meta.size_flits) {
                    Some(packet) => {
                        let prev = self.packet_msgs.insert(packet, m);
                        debug_assert!(prev.is_none(), "packet id reused");
                    }
                    None => {
                        self.endpoint_full[meta.src] = self.epoch;
                        self.blocked.push_back(m);
                    }
                }
            }
            // Wake at the next scheduled eligibility or the next
            // delivery, whichever comes first.
            let next_ready = self.ready.peek().map_or(u64::MAX, |&Reverse((t, _))| t);
            let target = next_ready.min(deadline);
            if self.sim.run_until_deliveries(target) {
                self.sim.take_deliveries(&mut self.deliveries);
                for i in 0..self.deliveries.len() {
                    let d = self.deliveries[i];
                    self.retire(d);
                }
                self.deliveries.clear();
            }
            if self.sim.deadlock_suspected() {
                break;
            }
        }
        self.is_complete()
    }

    /// Marks one delivery: records completion and unlocks dependents.
    fn retire(&mut self, d: Delivery) {
        let m = self.packet_msgs[&d.packet];
        debug_assert_eq!(self.msgs[m].dest, d.dest, "delivery at the wrong endpoint");
        debug_assert_eq!(self.completion[m], u64::MAX, "message retired twice");
        self.completion[m] = d.cycle;
        self.delivered += 1;
        self.delivered_flits += self.msgs[m].size_flits as u64;
        self.makespan = self.makespan.max(d.cycle);
        let tag = self.msgs[m].tag as usize;
        self.tag_completion[tag] = self.tag_completion[tag].max(d.cycle);
        self.tag_done[tag] += 1;
        let (lo, hi) = (self.dep_offsets[m] as usize, self.dep_offsets[m + 1] as usize);
        for i in lo..hi {
            let child = self.dep_targets[i] as usize;
            self.remaining[child] -= 1;
            if self.remaining[child] == 0 {
                self.ready.push(Reverse((d.cycle + self.msgs[child].compute_delay, child)));
            }
        }
    }

    /// Runs the workload to completion (or for `max_cycles`, whichever
    /// comes first) and returns the application-level statistics.
    pub fn run(&mut self, max_cycles: u64) -> WorkloadStats {
        self.advance(max_cycles);
        self.stats()
    }

    /// Application-level statistics of the run so far.
    #[must_use]
    pub fn stats(&self) -> WorkloadStats {
        let per_tag_completion = self
            .tag_completion
            .iter()
            .enumerate()
            .map(|(tag, &cycle)| {
                (tag as u32, (self.tag_done[tag] == self.tag_total[tag]).then_some(cycle))
            })
            .collect();
        WorkloadStats {
            completed: self.is_complete(),
            makespan: self.makespan,
            delivered_messages: self.delivered as u64,
            delivered_flits: self.delivered_flits,
            critical_path_cycles: self.critical_path,
            per_tag_completion,
            network: self.sim.stats(),
        }
    }
}

/// Analytic zero-load critical path: longest dependency chain with each
/// message costed at its contention-free latency on this topology
/// (injection + per-hop wire/router + ejection + serialization) plus its
/// compute delay. Walks the driver's CSR dependents
/// (`dep_offsets`/`dep_targets`) with `dep_counts` as the initial Kahn
/// indegrees — the workload already validated acyclic, and message ids
/// are not guaranteed topological, hence the front.
fn critical_path_cycles(
    g: &Graph,
    config: &SimConfig,
    workload: &Workload,
    dep_offsets: &[u32],
    dep_targets: &[u32],
    dep_counts: &[u32],
) -> u64 {
    let n = g.num_vertices();
    let hops = bfs::all_pairs_distances(g);
    let epr = config.endpoints_per_router;
    let ideal = |m: &crate::ir::Message| -> u64 {
        let h = u64::from(hops[(m.src / epr) * n + m.dest / epr]);
        2 * config.injection_latency
            + (h + 1) * config.pipeline_cycles()
            + h * config.link_latency
            + (m.size_flits as u64 - 1)
    };
    let count = workload.len();
    let mut indegree = dep_counts.to_vec();
    let mut cp = vec![0u64; count];
    let mut front: Vec<MsgId> = (0..count).filter(|&i| indegree[i] == 0).collect();
    let mut best = 0;
    while let Some(id) = front.pop() {
        let m = &workload.messages[id];
        let base = m.deps.iter().map(|&d| cp[d]).max().unwrap_or(0);
        cp[id] = base + m.compute_delay + ideal(m);
        best = best.max(cp[id]);
        for &t in &dep_targets[dep_offsets[id] as usize..dep_offsets[id + 1] as usize] {
            let child = t as usize;
            indegree[child] -= 1;
            if indegree[child] == 0 {
                front.push(child);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::WorkloadKind;
    use chiplet_graph::gen;

    fn config() -> SimConfig {
        SimConfig {
            vcs: 4,
            buffer_depth: 4,
            source_queue_cap: 16,
            ..SimConfig::paper_defaults()
        }
    }

    #[test]
    fn ring_all_reduce_completes_on_a_grid() {
        let g = gen::grid(3, 3); // 18 endpoints
        let w = WorkloadKind::RingAllReduce.build(18);
        let mut driver = WorkloadDriver::new(&g, config(), &w).expect("valid");
        let stats = driver.run(2_000_000);
        assert!(stats.completed, "all-reduce did not finish");
        assert_eq!(stats.delivered_messages, w.len() as u64);
        assert_eq!(stats.delivered_flits, w.total_flits());
        assert_eq!(stats.network.received_packets, w.len() as u64);
        assert!(stats.makespan > 0);
        assert!(
            stats.makespan >= stats.critical_path_cycles,
            "makespan {} below the zero-load critical path {}",
            stats.makespan,
            stats.critical_path_cycles
        );
        // The reduce-scatter phase (tag 0) finishes before the
        // all-gather (tag 1).
        let phase0 = stats.per_tag_completion[0].1.expect("phase 0 complete");
        let phase1 = stats.per_tag_completion[1].1.expect("phase 1 complete");
        assert!(phase0 < phase1);
    }

    #[test]
    fn every_kernel_completes_on_a_small_grid() {
        let g = gen::grid(2, 3); // 12 endpoints
        for kind in WorkloadKind::ALL {
            let w = kind.build(12);
            let mut driver = WorkloadDriver::new(&g, config(), &w).expect("valid");
            let stats = driver.run(5_000_000);
            assert!(stats.completed, "{kind} did not finish");
            assert_eq!(stats.delivered_messages, w.len() as u64, "{kind}");
            assert!(!driver.sim().deadlock_suspected(), "{kind} deadlocked");
        }
    }

    #[test]
    fn endpoint_mismatch_is_rejected() {
        let g = gen::grid(2, 2); // 8 endpoints
        let w = WorkloadKind::Pipeline.build(12);
        assert!(matches!(
            WorkloadDriver::new(&g, config(), &w),
            Err(DriverError::EndpointMismatch { workload: 12, sim: 8 })
        ));
    }

    #[test]
    fn invalid_workload_is_rejected() {
        let g = gen::grid(2, 2);
        let w = Workload { name: "empty".into(), num_endpoints: 8, messages: vec![] };
        assert!(matches!(
            WorkloadDriver::new(&g, config(), &w),
            Err(DriverError::Workload(WorkloadError::Empty))
        ));
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let g = gen::grid(3, 3);
        let w = WorkloadKind::RingAllReduce.build(18);
        let mut driver = WorkloadDriver::new(&g, config(), &w).expect("valid");
        let stats = driver.run(50); // far too few cycles
        assert!(!stats.completed);
        assert!(stats.delivered_messages < w.len() as u64);
        // Unfinished phases are None, not a phantom cycle-0 completion.
        assert_eq!(stats.per_tag_completion.last().expect("tags exist").1, None);
        // Resuming finishes the job.
        assert!(driver.advance(2_000_000));
        assert!(driver.stats().completed);
    }

    #[test]
    fn queue_occupancy_is_visible_in_closed_loop_runs() {
        let g = gen::grid(2, 3);
        let w = WorkloadKind::AllToAll.build(12);
        let mut driver = WorkloadDriver::new(&g, config(), &w).expect("valid");
        let stats = driver.run(5_000_000);
        assert!(stats.completed);
        // Sends queue behind each other, so the peak occupancy must be
        // visible and the mean non-zero.
        assert!(stats.network.max_source_queue_flits > 0);
        assert!(stats.network.avg_source_queue_flits > 0.0);
        // Closed-loop accounting: re-offered (refused) messages must not
        // inflate the offered counter — one logical message, one offer.
        assert_eq!(stats.network.offered_packets, w.len() as u64);
        assert_eq!(stats.network.accepted_packets, w.len() as u64);
    }
}
