//! The workload intermediate representation: messages with dependencies.
//!
//! A [`Workload`] is a DAG of [`Message`]s over a set of endpoints. A
//! message becomes *ready* for injection at its source once every
//! dependency message has been **delivered** (tail flit at its
//! destination) plus a compute delay — the CAMINOS-style
//! message-dependency model, which is what separates application traffic
//! from memoryless synthetic injection: messages unlock other messages,
//! so network congestion feeds back into the offered load.
//!
//! The IR is deliberately small: kernels (`crate::kernels`) compile down
//! to it, traces (`crate::trace`) serialize exactly it, and the driver
//! (`crate::driver`) executes exactly it. Anything expressible as a
//! message DAG — collectives, stencils, request–reply services, pipeline
//! parallelism — runs through the same three stages.

use std::fmt;

use nocsim::flit::EndpointId;

/// Index of a message within its [`Workload`].
pub type MsgId = usize;

/// One message of a workload DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Source endpoint.
    pub src: EndpointId,
    /// Destination endpoint (≠ `src`).
    pub dest: EndpointId,
    /// Payload length in flits (≥ 1).
    pub size_flits: usize,
    /// Compute delay in cycles between the last dependency's delivery and
    /// this message's injection eligibility (local work: a reduction op,
    /// a stencil update, a stage's forward pass).
    pub compute_delay: u64,
    /// Messages that must be fully delivered before this one is ready.
    /// An empty list means ready at cycle `compute_delay`.
    pub deps: Vec<MsgId>,
    /// Phase tag for reporting (collective step, stencil iteration,
    /// microbatch index, …): per-tag completion times come back in
    /// [`crate::driver::WorkloadStats`].
    pub tag: u32,
}

/// A complete workload: a validated-on-demand message DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name (kernel label or trace origin).
    pub name: String,
    /// Number of endpoints the workload addresses (`src`/`dest` range).
    pub num_endpoints: usize,
    /// The messages, in id order.
    pub messages: Vec<Message>,
}

/// Validation errors for a workload DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A message's `src` or `dest` is outside `0..num_endpoints`.
    EndpointOutOfRange {
        /// Offending message.
        msg: MsgId,
    },
    /// A message sends to itself.
    SelfTraffic {
        /// Offending message.
        msg: MsgId,
    },
    /// A message has zero length.
    EmptyMessage {
        /// Offending message.
        msg: MsgId,
    },
    /// A dependency index is out of range.
    DanglingDependency {
        /// Offending message.
        msg: MsgId,
        /// The out-of-range dependency id.
        dep: MsgId,
    },
    /// The dependency graph has a cycle: no execution order exists.
    CyclicDependencies,
    /// The workload has no messages.
    Empty,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EndpointOutOfRange { msg } => {
                write!(f, "message {msg}: endpoint out of range")
            }
            WorkloadError::SelfTraffic { msg } => {
                write!(f, "message {msg}: source equals destination")
            }
            WorkloadError::EmptyMessage { msg } => {
                write!(f, "message {msg}: zero-flit payload")
            }
            WorkloadError::DanglingDependency { msg, dep } => {
                write!(f, "message {msg}: dependency {dep} does not exist")
            }
            WorkloadError::CyclicDependencies => {
                write!(f, "dependency graph is cyclic")
            }
            WorkloadError::Empty => write!(f, "workload has no messages"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl Workload {
    /// Checks the DAG invariants: endpoints in range, no self-traffic, no
    /// empty payloads, dependencies in range, and acyclicity (Kahn's
    /// topological sort must consume every message).
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`WorkloadError`].
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.messages.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let n = self.messages.len();
        let mut indegree = vec![0u32; n];
        for (id, m) in self.messages.iter().enumerate() {
            if m.src >= self.num_endpoints || m.dest >= self.num_endpoints {
                return Err(WorkloadError::EndpointOutOfRange { msg: id });
            }
            if m.src == m.dest {
                return Err(WorkloadError::SelfTraffic { msg: id });
            }
            if m.size_flits == 0 {
                return Err(WorkloadError::EmptyMessage { msg: id });
            }
            for &d in &m.deps {
                if d >= n {
                    return Err(WorkloadError::DanglingDependency { msg: id, dep: d });
                }
                indegree[id] += 1;
            }
        }
        // Kahn's algorithm over the dependency edges.
        let mut dependents: Vec<Vec<MsgId>> = vec![Vec::new(); n];
        for (id, m) in self.messages.iter().enumerate() {
            for &d in &m.deps {
                dependents[d].push(id);
            }
        }
        let mut stack: Vec<MsgId> = (0..n).filter(|&id| indegree[id] == 0).collect();
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            for &child in &dependents[id] {
                indegree[child] -= 1;
                if indegree[child] == 0 {
                    stack.push(child);
                }
            }
        }
        if visited != n {
            return Err(WorkloadError::CyclicDependencies);
        }
        Ok(())
    }

    /// Total payload carried by the workload, in flits.
    #[must_use]
    pub fn total_flits(&self) -> u64 {
        self.messages.iter().map(|m| m.size_flits as u64).sum()
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` if the workload has no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Length (in messages) of the longest dependency chain — the DAG's
    /// depth, a quick structural sanity metric for generators.
    #[must_use]
    pub fn dependency_depth(&self) -> usize {
        let n = self.messages.len();
        let mut depth = vec![0usize; n];
        let mut max = 0;
        // Generators emit messages in a topological order (deps precede
        // dependents); fall back to iterating until fixpoint otherwise.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                let d = self.messages[id].deps.iter().map(|&x| depth[x] + 1).max().unwrap_or(1);
                if d > depth[id] {
                    depth[id] = d;
                    changed = true;
                }
            }
        }
        for &d in &depth {
            max = max.max(d);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, dest: usize, deps: Vec<MsgId>) -> Message {
        Message { src, dest, size_flits: 4, compute_delay: 0, deps, tag: 0 }
    }

    fn workload(messages: Vec<Message>) -> Workload {
        Workload { name: "test".to_owned(), num_endpoints: 4, messages }
    }

    #[test]
    fn valid_chain_passes() {
        let w = workload(vec![msg(0, 1, vec![]), msg(1, 2, vec![0]), msg(2, 3, vec![1])]);
        assert_eq!(w.validate(), Ok(()));
        assert_eq!(w.total_flits(), 12);
        assert_eq!(w.dependency_depth(), 3);
    }

    #[test]
    fn cycle_is_rejected() {
        let w = workload(vec![msg(0, 1, vec![1]), msg(1, 2, vec![0])]);
        assert_eq!(w.validate(), Err(WorkloadError::CyclicDependencies));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let w = workload(vec![msg(0, 1, vec![0])]);
        assert_eq!(w.validate(), Err(WorkloadError::CyclicDependencies));
    }

    #[test]
    fn bad_indices_are_rejected() {
        let w = workload(vec![msg(0, 9, vec![])]);
        assert_eq!(w.validate(), Err(WorkloadError::EndpointOutOfRange { msg: 0 }));
        let w = workload(vec![msg(2, 2, vec![])]);
        assert_eq!(w.validate(), Err(WorkloadError::SelfTraffic { msg: 0 }));
        let w = workload(vec![msg(0, 1, vec![7])]);
        assert_eq!(w.validate(), Err(WorkloadError::DanglingDependency { msg: 0, dep: 7 }));
        let mut bad = msg(0, 1, vec![]);
        bad.size_flits = 0;
        assert_eq!(workload(vec![bad]).validate(), Err(WorkloadError::EmptyMessage { msg: 0 }));
        assert_eq!(workload(vec![]).validate(), Err(WorkloadError::Empty));
    }
}
