//! Canonical parallel-kernel generators, compiled to the message-DAG IR.
//!
//! Each generator sizes itself to any endpoint count the arrangements
//! support (`E ≥ 2`) and is a pure function of its inputs — the same
//! `(kind, E)` always produces the same DAG, so workload runs are
//! deterministic end to end. The kernels are the communication skeletons
//! application-level interconnect studies actually rank arrangements
//! under:
//!
//! * **ring all-reduce** — reduce-scatter + all-gather around the
//!   endpoint ring (bandwidth-optimal, latency ∝ E);
//! * **recursive-doubling all-reduce** — log₂-round pairwise exchanges
//!   with the standard fold/unfold for non-power-of-two counts;
//! * **all-to-all** — full personalized exchange with a bounded
//!   outstanding-send window per source;
//! * **2D stencil** — iterated halo exchange on the near-square logical
//!   grid of the endpoints;
//! * **client/server** — request–reply rounds against a small server
//!   pool (think/service times in the dependency edges);
//! * **pipeline** — a DNN-style stage chain streaming microbatches, each
//!   stage gated by its predecessor stage and its previous microbatch.

use std::fmt;
use std::str::FromStr;

use crate::ir::{Message, MsgId, Workload};

/// Payload of one collective chunk / halo / activation, in flits
/// (matches the paper's 4-flit packets).
const CHUNK_FLITS: usize = 4;
/// Local compute between dependency resolution and the next send
/// (reduction op, stencil update), in cycles.
const COMPUTE_CYCLES: u64 = 32;
/// Stencil iterations.
const STENCIL_ITERS: u32 = 4;
/// Outstanding-send window per source in the all-to-all exchange.
const ALLTOALL_WINDOW: usize = 4;
/// Microbatches streamed through the pipeline.
const PIPELINE_MICROBATCHES: u32 = 8;
/// Per-stage forward-pass time in the pipeline, in cycles.
const PIPELINE_COMPUTE: u64 = 64;
/// Request / response payloads and think/service times for the
/// client–server kernel.
const REQUEST_FLITS: usize = 1;
const RESPONSE_FLITS: usize = 8;
const THINK_CYCLES: u64 = 16;
const SERVICE_CYCLES: u64 = 16;
const CLIENT_SERVER_ROUNDS: u32 = 4;

/// The canonical kernels, parameter-free (sizing is derived from the
/// endpoint count at build time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Ring all-reduce: reduce-scatter + all-gather, `2(E−1)` steps.
    RingAllReduce,
    /// Recursive-doubling all-reduce with non-power-of-two fold/unfold.
    RdAllReduce,
    /// Windowed personalized all-to-all exchange.
    AllToAll,
    /// Iterated 2D halo exchange on the near-square endpoint grid.
    Stencil,
    /// Request–reply rounds against a server pool.
    ClientServer,
    /// DNN pipeline stage chain streaming microbatches.
    Pipeline,
}

impl WorkloadKind {
    /// Every kernel, in presentation order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::RingAllReduce,
        WorkloadKind::RdAllReduce,
        WorkloadKind::AllToAll,
        WorkloadKind::Stencil,
        WorkloadKind::ClientServer,
        WorkloadKind::Pipeline,
    ];

    /// Canonical name, as accepted by the [`FromStr`] parser and used in
    /// CSV/JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::RingAllReduce => "ring_allreduce",
            WorkloadKind::RdAllReduce => "rd_allreduce",
            WorkloadKind::AllToAll => "alltoall",
            WorkloadKind::Stencil => "stencil",
            WorkloadKind::ClientServer => "client_server",
            WorkloadKind::Pipeline => "pipeline",
        }
    }

    /// Stable coordinate code for seed derivation (`xp::seed`).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            WorkloadKind::RingAllReduce => 0,
            WorkloadKind::RdAllReduce => 1,
            WorkloadKind::AllToAll => 2,
            WorkloadKind::Stencil => 3,
            WorkloadKind::ClientServer => 4,
            WorkloadKind::Pipeline => 5,
        }
    }

    /// Builds the kernel's message DAG for `num_endpoints` endpoints.
    /// The result always passes [`Workload::validate`].
    ///
    /// # Panics
    ///
    /// Panics if `num_endpoints < 2` — a single endpoint has no
    /// interconnect to exercise.
    #[must_use]
    pub fn build(self, num_endpoints: usize) -> Workload {
        assert!(num_endpoints >= 2, "workloads need at least two endpoints");
        let messages = match self {
            WorkloadKind::RingAllReduce => ring_all_reduce(num_endpoints),
            WorkloadKind::RdAllReduce => rd_all_reduce(num_endpoints),
            WorkloadKind::AllToAll => all_to_all(num_endpoints),
            WorkloadKind::Stencil => stencil(num_endpoints),
            WorkloadKind::ClientServer => client_server(num_endpoints),
            WorkloadKind::Pipeline => pipeline(num_endpoints),
        };
        let w = Workload { name: self.label().to_owned(), num_endpoints, messages };
        debug_assert_eq!(w.validate(), Ok(()), "generator emitted an invalid DAG");
        w
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        WorkloadKind::ALL.into_iter().find(|k| k.label() == s).ok_or_else(|| {
            let names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.label()).collect();
            format!("unknown workload {s:?} (expected one of {})", names.join("|"))
        })
    }
}

/// Ring all-reduce: in step `s`, endpoint `i` sends one chunk to
/// `(i+1) mod E`, forwarding what it received (and, in the first `E−1`
/// steps, reduced) in step `s−1`. `2(E−1)` steps; tag 0 = reduce-scatter,
/// tag 1 = all-gather.
fn ring_all_reduce(e: usize) -> Vec<Message> {
    let steps = 2 * (e - 1);
    let mut out = Vec::with_capacity(steps * e);
    for s in 0..steps {
        let reduce_phase = s < e - 1;
        for i in 0..e {
            // The chunk endpoint i forwards in step s is the one it
            // received from i−1 in step s−1.
            let deps = if s == 0 { vec![] } else { vec![(s - 1) * e + (i + e - 1) % e] };
            out.push(Message {
                src: i,
                dest: (i + 1) % e,
                size_flits: CHUNK_FLITS,
                // The reduce-scatter phase combines (compute); the
                // all-gather phase just copies.
                compute_delay: if reduce_phase { COMPUTE_CYCLES } else { 0 },
                deps,
                tag: u32::from(!reduce_phase),
            });
        }
    }
    out
}

/// Recursive-doubling all-reduce. For `E = p + r` with `p` the largest
/// power of two ≤ `E`: the first `2r` endpoints fold pairwise (odd →
/// even), the `p` survivors run `log₂ p` rounds of pairwise exchange,
/// and the folded endpoints get the result back. Tags are dense from
/// zero: fold (only when `r > 0`), then one tag per exchange round,
/// then unfold.
fn rd_all_reduce(e: usize) -> Vec<Message> {
    let p = prev_power_of_two(e);
    let r = e - p;
    let rounds = p.trailing_zeros();
    // Active index a ∈ 0..p → endpoint id.
    let ep = |a: usize| if a < r { 2 * a } else { a + r };
    let mut out = Vec::new();
    // Fold: odd endpoints of the first 2r hand their vector to the even
    // neighbour. Message id j (j ∈ 0..r).
    for j in 0..r {
        out.push(Message {
            src: 2 * j + 1,
            dest: 2 * j,
            size_flits: CHUNK_FLITS,
            compute_delay: 0,
            deps: vec![],
            tag: 0,
        });
    }
    // Exchange rounds: message id r + k·p + a is round k's send from
    // active a to its partner a ^ 2ᵏ. Tags stay dense from zero: the
    // fold phase (tag 0) only exists for non-powers-of-two.
    let idx = |k: u32, a: usize| r + (k as usize) * p + a;
    let tag_base = u32::from(r > 0);
    for k in 0..rounds {
        for a in 0..p {
            let partner = a ^ (1 << k);
            let mut deps = Vec::new();
            if k == 0 {
                if a < r {
                    deps.push(a); // the folded vector must have arrived
                }
            } else {
                let prev = a ^ (1 << (k - 1));
                deps.push(idx(k - 1, prev)); // round k−1 message *to* a
                deps.push(idx(k - 1, a)); // a's own previous send (ordering)
            }
            out.push(Message {
                src: ep(a),
                dest: ep(partner),
                size_flits: CHUNK_FLITS,
                compute_delay: COMPUTE_CYCLES,
                deps,
                tag: tag_base + k,
            });
        }
    }
    // Unfold: the even survivors return the result to their folded
    // neighbours.
    for j in 0..r {
        let deps = if rounds == 0 {
            // p == 1 cannot happen for e >= 2 (p >= 2 whenever r > 0
            // requires e >= 3); guard anyway.
            vec![j]
        } else {
            let k = rounds - 1;
            vec![idx(k, j ^ (1 << k)), idx(k, j)]
        };
        out.push(Message {
            src: 2 * j,
            dest: 2 * j + 1,
            size_flits: CHUNK_FLITS,
            compute_delay: 0,
            deps,
            // Exchange rounds used tags tag_base..tag_base+rounds; the
            // unfold is the next phase.
            tag: tag_base + rounds,
        });
    }
    out
}

/// Windowed all-to-all: source `i` sends one chunk to every other
/// endpoint in rotated order (`i+1, i+2, …`), with at most
/// [`ALLTOALL_WINDOW`] sends outstanding per source (send `s` waits for
/// the delivery of send `s − window`).
fn all_to_all(e: usize) -> Vec<Message> {
    let per_src = e - 1;
    let mut out = Vec::with_capacity(e * per_src);
    for i in 0..e {
        for s in 0..per_src {
            let deps = if s >= ALLTOALL_WINDOW {
                vec![i * per_src + (s - ALLTOALL_WINDOW)]
            } else {
                vec![]
            };
            out.push(Message {
                src: i,
                dest: (i + s + 1) % e,
                size_flits: CHUNK_FLITS,
                compute_delay: 0,
                deps,
                tag: 0,
            });
        }
    }
    out
}

/// Nearest-square factorization `rows × cols = e` with `rows ≤ cols`
/// (primes degrade to a 1 × E strip).
fn near_square_dims(e: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= e {
        if e.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, e / rows)
}

/// Iterated 2D halo exchange on the near-square endpoint grid:
/// iteration `t`'s sends from cell `i` wait for every iteration-`t−1`
/// halo *into* `i` plus the stencil update. Tag = iteration.
fn stencil(e: usize) -> Vec<Message> {
    let (rows, cols) = near_square_dims(e);
    let cell = |x: usize, y: usize| x * cols + y;
    // Symmetric 4-neighbourhoods (non-periodic boundaries).
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); e];
    for x in 0..rows {
        for y in 0..cols {
            let i = cell(x, y);
            if x > 0 {
                neighbors[i].push(cell(x - 1, y));
            }
            if x + 1 < rows {
                neighbors[i].push(cell(x + 1, y));
            }
            if y > 0 {
                neighbors[i].push(cell(x, y - 1));
            }
            if y + 1 < cols {
                neighbors[i].push(cell(x, y + 1));
            }
        }
    }
    // Message ids: iteration-major, cell-major, neighbour-minor.
    // `msg_at[i]` is cell i's first message within one iteration.
    let mut msg_at = vec![0usize; e];
    let mut per_iter = 0usize;
    for i in 0..e {
        msg_at[i] = per_iter;
        per_iter += neighbors[i].len();
    }
    let id = |t: u32, i: usize, k: usize| (t as usize) * per_iter + msg_at[i] + k;
    let mut out = Vec::with_capacity(per_iter * STENCIL_ITERS as usize);
    for t in 0..STENCIL_ITERS {
        for i in 0..e {
            // Halos into i from iteration t−1: neighbour j' sent its
            // k'-th message to i, where k' is i's position in j''s
            // neighbour list.
            let deps: Vec<MsgId> = if t == 0 {
                vec![]
            } else {
                neighbors[i]
                    .iter()
                    .map(|&jp| {
                        let kp = neighbors[jp]
                            .iter()
                            .position(|&x| x == i)
                            .expect("symmetric neighbourhood");
                        id(t - 1, jp, kp)
                    })
                    .collect()
            };
            for &j in &neighbors[i] {
                out.push(Message {
                    src: i,
                    dest: j,
                    size_flits: CHUNK_FLITS,
                    compute_delay: COMPUTE_CYCLES,
                    deps: deps.clone(),
                    tag: t,
                });
            }
        }
    }
    out
}

/// Request–reply rounds: each client sends a request to its server
/// (round-robin assignment), the server replies after a service time,
/// and the client's next round waits for the reply plus a think time.
/// Tag = round.
fn client_server(e: usize) -> Vec<Message> {
    // One server per 8 endpoints, at least 1, and at least one client.
    let servers = (e / 8).clamp(1, e - 1);
    let clients = e - servers;
    let req = |t: u32, q: usize| (t as usize) * 2 * clients + q;
    let resp = |t: u32, q: usize| (t as usize) * 2 * clients + clients + q;
    let mut out = Vec::with_capacity(2 * clients * CLIENT_SERVER_ROUNDS as usize);
    for t in 0..CLIENT_SERVER_ROUNDS {
        for q in 0..clients {
            let client = servers + q;
            let server = q % servers;
            out.push(Message {
                src: client,
                dest: server,
                size_flits: REQUEST_FLITS,
                compute_delay: THINK_CYCLES,
                deps: if t == 0 { vec![] } else { vec![resp(t - 1, q)] },
                tag: t,
            });
        }
        for q in 0..clients {
            let client = servers + q;
            let server = q % servers;
            out.push(Message {
                src: server,
                dest: client,
                size_flits: RESPONSE_FLITS,
                compute_delay: SERVICE_CYCLES,
                deps: vec![req(t, q)],
                tag: t,
            });
        }
    }
    out
}

/// DNN pipeline: every endpoint is one stage; microbatch `b`'s activation
/// from stage `s` to `s+1` waits for the activation from stage `s−1`
/// (same microbatch) and for stage `s`'s previous microbatch (stage
/// occupancy). Tag = microbatch.
fn pipeline(e: usize) -> Vec<Message> {
    let stages = e - 1; // messages per microbatch (stage s → s+1)
    let idx = |b: u32, s: usize| (b as usize) * stages + s;
    let mut out = Vec::with_capacity(stages * PIPELINE_MICROBATCHES as usize);
    for b in 0..PIPELINE_MICROBATCHES {
        for s in 0..stages {
            let mut deps = Vec::new();
            if s > 0 {
                deps.push(idx(b, s - 1));
            }
            if b > 0 {
                deps.push(idx(b - 1, s));
            }
            out.push(Message {
                src: s,
                dest: s + 1,
                size_flits: CHUNK_FLITS,
                compute_delay: PIPELINE_COMPUTE,
                deps,
                tag: b,
            });
        }
    }
    out
}

/// Largest power of two ≤ `x` (`x ≥ 1`).
fn prev_power_of_two(x: usize) -> usize {
    let mut p = 1;
    while p * 2 <= x {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_validates_at_many_sizes() {
        for e in [2usize, 3, 4, 5, 8, 13, 21, 74] {
            for kind in WorkloadKind::ALL {
                let w = kind.build(e);
                assert_eq!(w.validate(), Ok(()), "{kind} at E={e}");
                assert!(!w.is_empty(), "{kind} at E={e} generated nothing");
            }
        }
    }

    #[test]
    fn ring_all_reduce_shape() {
        let w = WorkloadKind::RingAllReduce.build(8);
        // 2(E−1) steps of E messages each.
        assert_eq!(w.len(), 14 * 8);
        // Chain depth equals the step count.
        assert_eq!(w.dependency_depth(), 14);
        // Every endpoint sends exactly 2(E−1) messages.
        let mut sends = [0usize; 8];
        for m in &w.messages {
            sends[m.src] += 1;
            assert_eq!(m.dest, (m.src + 1) % 8, "ring neighbour send");
        }
        assert!(sends.iter().all(|&s| s == 14));
    }

    #[test]
    fn rd_all_reduce_power_of_two_is_pure_exchange() {
        let w = WorkloadKind::RdAllReduce.build(16);
        // log₂ 16 = 4 rounds of 16 messages, no fold/unfold.
        assert_eq!(w.len(), 4 * 16);
        assert_eq!(w.dependency_depth(), 4);
    }

    #[test]
    fn rd_all_reduce_folds_non_powers_of_two() {
        let e = 13;
        let w = WorkloadKind::RdAllReduce.build(e);
        let p = 8;
        let r = e - p;
        // r folds + 3 rounds of p + r unfolds.
        assert_eq!(w.len(), r + 3 * p + r);
        // The folded endpoints (odd ids < 2r) appear only in fold/unfold.
        for m in &w.messages[r..r + 3 * p] {
            assert!(
                m.src >= 2 * r || m.src % 2 == 0,
                "folded endpoint {} sent in an exchange round",
                m.src
            );
        }
    }

    #[test]
    fn all_to_all_covers_every_pair_once() {
        let e = 6;
        let w = WorkloadKind::AllToAll.build(e);
        assert_eq!(w.len(), e * (e - 1));
        let mut seen = vec![false; e * e];
        for m in &w.messages {
            assert!(!seen[m.src * e + m.dest], "duplicate pair {}→{}", m.src, m.dest);
            seen[m.src * e + m.dest] = true;
        }
    }

    #[test]
    fn stencil_is_symmetric_halo_exchange() {
        let w = WorkloadKind::Stencil.build(12); // 3×4 grid
                                                 // Interior edges ×2 directions ×iterations: (3·3 + 2·4) = 17
                                                 // undirected edges → 34 per iteration.
        assert_eq!(w.len(), 34 * STENCIL_ITERS as usize);
        // Iteration t messages depend on all t−1 halos into the source.
        let m = w.messages.iter().find(|m| m.tag == 1).expect("iteration 1 exists");
        assert!(!m.deps.is_empty());
        for &d in &m.deps {
            assert_eq!(w.messages[d].dest, m.src, "dep is a halo into the source");
            assert_eq!(w.messages[d].tag, 0);
        }
    }

    #[test]
    fn stencil_on_primes_degrades_to_a_strip() {
        let w = WorkloadKind::Stencil.build(7);
        // 1×7 strip: 6 undirected edges → 12 messages per iteration.
        assert_eq!(w.len(), 12 * STENCIL_ITERS as usize);
    }

    #[test]
    fn client_server_pairs_requests_and_replies() {
        let e = 18; // 2 servers, 16 clients
        let w = WorkloadKind::ClientServer.build(e);
        assert_eq!(w.len(), 2 * 16 * CLIENT_SERVER_ROUNDS as usize);
        // Every response depends on exactly its request.
        for (id, m) in w.messages.iter().enumerate() {
            if m.size_flits == RESPONSE_FLITS {
                assert_eq!(m.deps.len(), 1);
                let req = &w.messages[m.deps[0]];
                assert_eq!((req.src, req.dest), (m.dest, m.src), "reply inverts {id}");
            }
        }
    }

    #[test]
    fn pipeline_chains_stages_and_microbatches() {
        let e = 5;
        let w = WorkloadKind::Pipeline.build(e);
        assert_eq!(w.len(), (e - 1) * PIPELINE_MICROBATCHES as usize);
        // Depth: first microbatch traverses all stages, then one more per
        // microbatch at the last stage.
        assert_eq!(w.dependency_depth(), (e - 1) + (PIPELINE_MICROBATCHES as usize - 1));
    }

    #[test]
    fn tags_are_dense_from_zero() {
        // per_tag_completion is indexed 0..=max_tag; a gap would report a
        // phantom never-completed phase.
        for e in [2usize, 5, 13, 21] {
            for kind in WorkloadKind::ALL {
                let w = kind.build(e);
                let max = w.messages.iter().map(|m| m.tag).max().unwrap();
                let mut seen = vec![false; max as usize + 1];
                for m in &w.messages {
                    seen[m.tag as usize] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "{kind} at E={e} skips a phase tag (max {max})"
                );
            }
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in WorkloadKind::ALL {
            assert_eq!(kind.label().parse::<WorkloadKind>(), Ok(kind));
        }
        assert!("matmul".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn near_square_dims_factor_exactly() {
        assert_eq!(near_square_dims(12), (3, 4));
        assert_eq!(near_square_dims(74), (2, 37));
        assert_eq!(near_square_dims(7), (1, 7));
        assert_eq!(near_square_dims(36), (6, 6));
    }
}
