//! Application-level workloads for arrangement evaluation.
//!
//! The HexaMesh paper (and this repository's Fig. 7 reproductions) rates
//! chiplet arrangements under open-loop synthetic traffic: memoryless
//! sources inject at a configured rate regardless of what the network
//! does. Real parallel applications are *closed-loop* — messages unlock
//! other messages, so congestion throttles the offered load and the
//! metric that matters is completion time, not saturation throughput.
//! This crate adds that evaluation dimension:
//!
//! * [`ir`] — the workload IR: a DAG of messages with receive
//!   dependencies and compute-delay edges (CAMINOS-style message
//!   dependencies);
//! * [`kernels`] — generators for canonical parallel kernels (ring and
//!   recursive-doubling all-reduce, all-to-all, 2D stencil halo
//!   exchange, client/server request–reply, DNN pipeline), sized to any
//!   endpoint count;
//! * [`trace`] — a compact CSV trace format with record + replay, so any
//!   run can be captured and re-fed deterministically;
//! * [`driver`] — the closed-loop [`driver::WorkloadDriver`]: injects
//!   when dependencies resolve, retires on tail-flit delivery, reports
//!   application-level metrics (makespan, per-phase completion,
//!   zero-load critical path) while preserving `nocsim`'s event-driven
//!   fast path and zero-allocation steady state.
//!
//! # Example: all-reduce makespan on a 3×3 chiplet grid
//!
//! ```
//! use chiplet_graph::gen;
//! use chiplet_workload::{WorkloadDriver, WorkloadKind};
//! use nocsim::SimConfig;
//!
//! let g = gen::grid(3, 3);
//! let workload = WorkloadKind::RingAllReduce.build(18); // 2 endpoints/chiplet
//! let mut driver = WorkloadDriver::new(&g, SimConfig::paper_defaults(), &workload)?;
//! let stats = driver.run(10_000_000);
//! assert!(stats.completed && stats.makespan > 0);
//! # Ok::<(), chiplet_workload::DriverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod ir;
pub mod kernels;
pub mod trace;

pub use driver::{DriverError, WorkloadDriver, WorkloadStats};
pub use ir::{Message, MsgId, Workload, WorkloadError};
pub use kernels::WorkloadKind;
