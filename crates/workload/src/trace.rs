//! Compact CSV trace format: record any workload, re-feed it later.
//!
//! A trace is the workload IR serialized exactly — because the driver is
//! deterministic given `(workload, topology, SimConfig)`, replaying a
//! recorded trace reproduces a run's statistics bit for bit (pinned by
//! `tests/determinism.rs`). The format is line-oriented CSV so traces
//! diff cleanly and can be produced by external tools:
//!
//! ```text
//! #chiplet_workload_trace v1
//! workload,<name>
//! endpoints,<E>
//! id,src,dest,size_flits,compute_delay,tag,deps
//! 0,0,1,4,32,0,
//! 1,1,2,4,32,0,0
//! 2,2,3,4,0,1,0;1
//! ```
//!
//! Dependencies are `;`-separated message ids; the `id` column is the
//! line's position (validated on read, so truncated or reordered traces
//! are rejected rather than silently misread).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::ir::{Message, Workload};

/// Magic first line of a v1 trace.
const MAGIC: &str = "#chiplet_workload_trace v1";

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first line is not the v1 magic.
    BadMagic,
    /// A header or record line is malformed; the message names the line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The decoded workload fails [`Workload::validate`].
    Invalid(crate::ir::WorkloadError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a chiplet_workload v1 trace"),
            TraceError::Malformed { line, what } => write!(f, "line {line}: {what}"),
            TraceError::Invalid(e) => write!(f, "decoded workload invalid: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Renders `workload` as a v1 trace.
///
/// The name is sanitized to a single line (newlines become spaces) so
/// the writer can never emit a trace the parser rejects.
#[must_use]
pub fn to_string(workload: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let name: String =
        workload.name.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
    let _ = writeln!(out, "workload,{name}");
    let _ = writeln!(out, "endpoints,{}", workload.num_endpoints);
    let _ = writeln!(out, "id,src,dest,size_flits,compute_delay,tag,deps");
    for (id, m) in workload.messages.iter().enumerate() {
        let deps: Vec<String> = m.deps.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "{id},{},{},{},{},{},{}",
            m.src,
            m.dest,
            m.size_flits,
            m.compute_delay,
            m.tag,
            deps.join(";")
        );
    }
    out
}

/// Parses a v1 trace back into a validated [`Workload`].
///
/// # Errors
///
/// [`TraceError`] on a malformed trace or an invalid decoded DAG.
pub fn from_str(text: &str) -> Result<Workload, TraceError> {
    let mut lines = text.lines().enumerate();
    let bad = |line: usize, what: &str| TraceError::Malformed {
        line: line + 1,
        what: what.to_owned(),
    };
    let (l, magic) = lines.next().ok_or(TraceError::BadMagic)?;
    if magic.trim_end() != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let _ = l;
    let (l, name_line) = lines.next().ok_or_else(|| bad(1, "missing workload line"))?;
    let name = name_line
        .strip_prefix("workload,")
        .ok_or_else(|| bad(l, "expected `workload,<name>`"))?
        .to_owned();
    let (l, ep_line) = lines.next().ok_or_else(|| bad(2, "missing endpoints line"))?;
    let num_endpoints: usize = ep_line
        .strip_prefix("endpoints,")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(l, "expected `endpoints,<count>`"))?;
    let (l, header) = lines.next().ok_or_else(|| bad(3, "missing column header"))?;
    if header != "id,src,dest,size_flits,compute_delay,tag,deps" {
        return Err(bad(l, "unexpected column header"));
    }

    let mut messages = Vec::new();
    for (l, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(bad(l, "expected 7 comma-separated fields"));
        }
        let num = |s: &str, what: &str| -> Result<usize, TraceError> {
            s.parse().map_err(|_| bad(l, &format!("{what} {s:?} is not a number")))
        };
        let id = num(fields[0], "id")?;
        if id != messages.len() {
            return Err(bad(l, "ids must be dense and in order"));
        }
        let deps = if fields[6].is_empty() {
            Vec::new()
        } else {
            fields[6].split(';').map(|d| num(d, "dependency")).collect::<Result<Vec<_>, _>>()?
        };
        messages.push(Message {
            src: num(fields[1], "src")?,
            dest: num(fields[2], "dest")?,
            size_flits: num(fields[3], "size_flits")?,
            compute_delay: num(fields[4], "compute_delay")? as u64,
            tag: u32::try_from(num(fields[5], "tag")?)
                .map_err(|_| bad(l, "tag out of range"))?,
            deps,
        });
    }
    let workload = Workload { name, num_endpoints, messages };
    workload.validate().map_err(TraceError::Invalid)?;
    Ok(workload)
}

/// Writes `workload` as a trace file at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(workload: &Workload, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_string(workload))
}

/// Reads a trace file back into a validated workload.
///
/// # Errors
///
/// Filesystem errors as `io::Error`; format errors as
/// [`TraceError`] wrapped in `io::Error::other`.
pub fn load(path: &Path) -> io::Result<Workload> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::WorkloadKind;

    #[test]
    fn every_kernel_round_trips() {
        for kind in WorkloadKind::ALL {
            for e in [2usize, 5, 12] {
                let w = kind.build(e);
                let parsed = from_str(&to_string(&w)).expect("round trip parses");
                assert_eq!(parsed, w, "{kind} at E={e}");
            }
        }
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert_eq!(from_str(""), Err(TraceError::BadMagic));
        assert_eq!(from_str("#something else\n"), Err(TraceError::BadMagic));

        let w = WorkloadKind::Pipeline.build(3);
        let good = to_string(&w);
        // Drop a record line: ids are no longer dense.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.remove(4);
        assert!(matches!(from_str(&lines.join("\n")), Err(TraceError::Malformed { .. })));
        // Corrupt a field.
        let bad = good.replace("0,0,1,", "0,zero,1,");
        assert!(matches!(from_str(&bad), Err(TraceError::Malformed { .. })));
    }

    #[test]
    fn semantically_invalid_traces_are_rejected() {
        // A structurally fine trace whose DAG is cyclic.
        let text = "#chiplet_workload_trace v1\nworkload,cycle\nendpoints,2\n\
                    id,src,dest,size_flits,compute_delay,tag,deps\n\
                    0,0,1,1,0,0,1\n1,1,0,1,0,0,0\n";
        assert!(matches!(from_str(text), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn multiline_names_are_sanitized_not_corrupting() {
        let mut w = WorkloadKind::Pipeline.build(3);
        w.name = "evil\nendpoints,5".to_owned();
        let parsed = from_str(&to_string(&w)).expect("sanitized trace parses");
        assert_eq!(parsed.name, "evil endpoints,5");
        assert_eq!(parsed.messages, w.messages);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("chiplet_workload_trace_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ring.trace.csv");
        let w = WorkloadKind::RingAllReduce.build(6);
        save(&w, &path).expect("writable temp dir");
        assert_eq!(load(&path).expect("readable"), w);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
