//! Extends the zero-allocation steady-state contract to workload mode:
//! once the driver's preallocated state (ready heap, blocked queue,
//! packet map, delivery scratch) and the simulator's buffers have
//! reached their working capacities, `WorkloadDriver::advance` performs
//! **zero** heap allocations — closed-loop injection must not cost the
//! hot path its contract.
//!
//! This file holds exactly one test so no concurrent test can perturb
//! the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use chiplet_graph::gen;
use chiplet_workload::{Message, Workload, WorkloadDriver};
use nocsim::SimConfig;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A long-running closed-loop workload that keeps the whole 4×4 network
/// busy: 16 independent ping-pong chains (one per endpoint pair, crossing
/// the grid) of 400 sequenced messages each.
fn busy_workload(num_endpoints: usize) -> Workload {
    let pairs = num_endpoints / 2;
    let rounds = 400usize;
    let mut messages = Vec::new();
    for r in 0..rounds {
        for p in 0..pairs {
            // Pair p ping-pongs between endpoint p and its complement —
            // traffic crosses the bisection, keeping routers active.
            let (a, b) = (p, num_endpoints - 1 - p);
            let (src, dest) = if r % 2 == 0 { (a, b) } else { (b, a) };
            let deps = if r == 0 { vec![] } else { vec![(r - 1) * pairs + p] };
            messages.push(Message { src, dest, size_flits: 4, compute_delay: 0, deps, tag: 0 });
        }
    }
    Workload { name: "pingpong".to_owned(), num_endpoints, messages }
}

#[test]
fn steady_state_workload_advance_never_allocates() {
    let g = gen::grid(4, 4);
    let config = SimConfig { seed: 42, ..SimConfig::paper_defaults() };
    let workload = busy_workload(32);
    let mut driver = WorkloadDriver::new(&g, config, &workload).expect("valid driver");

    // Let every growable buffer reach its working capacity: a few
    // thousand cycles of closed-loop execution.
    assert!(!driver.advance(3_000), "warmup must not finish the workload");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    driver.advance(4_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state workload advance() must not allocate (got {} allocations)",
        after - before
    );

    // The window did real closed-loop work.
    let stats = driver.stats();
    assert!(stats.delivered_messages > 100, "unexpectedly idle: {stats:?}");

    // And the workload still completes from here.
    assert!(driver.advance(u64::MAX - driver.sim().cycle()), "must complete");
}
