//! Golden-determinism suite for the workload path, extending the PR-2
//! golden-equivalence contract to closed-loop runs:
//!
//! * event-driven vs forced poll-every-cycle stepping
//!   (`set_reference_stepping`) produce bit-identical `WorkloadStats` —
//!   makespan, per-tag completion rows, network statistics, channel
//!   loads;
//! * results are byte-identical for any worker count (the driver is a
//!   pure function of its inputs, so a pool sweep returns the same rows
//!   serial and parallel);
//! * trace record → replay reproduces a run's statistics bit for bit.

use chiplet_graph::{gen, Graph};
use chiplet_workload::{trace, Workload, WorkloadDriver, WorkloadKind, WorkloadStats};
use nocsim::SimConfig;

fn config() -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        source_queue_cap: 16,
        seed: 0xABCD,
        ..SimConfig::paper_defaults()
    }
}

/// Runs `workload` to completion and fingerprints everything the two
/// stepping modes must agree on.
fn fingerprint(
    g: &Graph,
    workload: &Workload,
    reference: bool,
) -> (WorkloadStats, Vec<(usize, usize, u64)>, u64) {
    let mut driver = WorkloadDriver::new(g, config(), workload).expect("valid driver");
    driver.set_reference_stepping(reference);
    let stats = driver.run(10_000_000);
    assert!(stats.completed, "workload must finish under both modes");
    (stats, driver.sim().channel_loads(), driver.sim().cycle())
}

#[test]
fn golden_across_stepping_modes_for_every_kernel() {
    let g = gen::grid(3, 3); // 18 endpoints
    for kind in WorkloadKind::ALL {
        let w = kind.build(18);
        let event = fingerprint(&g, &w, false);
        let reference = fingerprint(&g, &w, true);
        assert_eq!(event, reference, "event vs reference mismatch for {kind}");
    }
}

#[test]
fn golden_on_irregular_topology() {
    let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6)])
        .expect("simple graph");
    let w = WorkloadKind::Stencil.build(14);
    assert_eq!(fingerprint(&g, &w, false), fingerprint(&g, &w, true), "irregular");
}

#[test]
fn identical_rows_for_any_worker_count() {
    // The shape workload_comparison sweeps: one driver per kernel, run
    // serially vs concurrently — rows must be identical. (The engine's
    // pool-level guarantee is pinned in crates/xp; this pins that the
    // driver itself shares no hidden state across instances.)
    let g = gen::grid(3, 3);
    let row = |kind: WorkloadKind| -> (String, u64, u64) {
        let w = kind.build(18);
        let mut driver = WorkloadDriver::new(&g, config(), &w).expect("valid");
        let stats = driver.run(10_000_000);
        (kind.label().to_owned(), stats.makespan, stats.delivered_flits)
    };
    let serial: Vec<_> = WorkloadKind::ALL.iter().map(|&k| row(k)).collect();
    let row = &row;
    let parallel: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            WorkloadKind::ALL.iter().map(|&k| scope.spawn(move || row(k))).collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    assert_eq!(serial, parallel);
}

#[test]
fn trace_record_replay_reproduces_stats_bit_identically() {
    let g = gen::grid(3, 3);
    for kind in [WorkloadKind::RingAllReduce, WorkloadKind::ClientServer] {
        let original = kind.build(18);
        let replayed = trace::from_str(&trace::to_string(&original)).expect("round trip");
        assert_eq!(
            fingerprint(&g, &original, false),
            fingerprint(&g, &replayed, false),
            "replayed {kind} diverged from the recorded run"
        );
    }
}

#[test]
fn reruns_are_bit_identical() {
    let g = gen::grid(3, 3);
    let w = WorkloadKind::RdAllReduce.build(18);
    assert_eq!(fingerprint(&g, &w, false), fingerprint(&g, &w, false));
}
