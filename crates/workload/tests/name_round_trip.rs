//! `label()` ↔ `FromStr` round-trip contract for [`WorkloadKind`] — the
//! workloads axis of study specs and `--workloads` flags.

use std::str::FromStr;

use chiplet_workload::WorkloadKind;
use proptest::prelude::*;

#[test]
fn every_kind_round_trips() {
    for kind in WorkloadKind::ALL {
        assert_eq!(WorkloadKind::from_str(kind.label()).unwrap(), kind);
        assert_eq!(WorkloadKind::from_str(&kind.to_string()).unwrap(), kind);
    }
    assert!(WorkloadKind::from_str("matmul").is_err());
}

proptest! {
    #[test]
    fn noise_never_parses_to_a_wrong_kind(
        letters in proptest::collection::vec(0u8..27, 1usize..16),
    ) {
        let noise: String = letters
            .iter()
            .map(|&l| if l < 26 { char::from(b'a' + l) } else { '_' })
            .collect();
        if let Ok(parsed) = WorkloadKind::from_str(&noise) {
            prop_assert_eq!(parsed.label(), noise, "parse must invert label exactly");
        }
    }
}
