//! The content-addressed on-disk result cache behind `study serve`.
//!
//! One directory per cache key under the cache root:
//!
//! ```text
//! <root>/<64-hex-key>/
//!   entry.json     # version, canonical spec echo, file list + checksums
//!   <stem>.csv     # the served artefacts, byte-exact
//!   <stem>.json
//! ```
//!
//! The key is the SHA-256 of the request's canonical material (resolved
//! spec + engine version + schedule tier — see [`crate::serve`]), so an
//! engine-version change or any semantic spec change lands on a
//! different directory and behaves as a cold miss. `entry.json` carries
//! a SHA-256 per artefact; [`ResultCache::load`] re-hashes every file
//! and treats any damage — truncation, corruption, a missing file, an
//! unreadable or mismatched entry — as [`Lookup::Evicted`]: the entry is
//! deleted and the caller recomputes. Poisoned bytes are never served.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::hash::sha256_hex;
use crate::json::{self, Value};

/// The entry-metadata file name inside a cache directory. Written last
/// on store, so its presence marks a complete entry.
const ENTRY_FILE: &str = "entry.json";

/// One cached artefact: its served file name and exact bytes (the
/// artefacts are CSV/JSON text, stored and replayed verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFile {
    /// Bare file name (no path separators), e.g. `load_curves.csv`.
    pub name: String,
    /// The full file content.
    pub content: String,
}

impl CachedFile {
    /// The file's SHA-256, as recorded in `entry.json`.
    #[must_use]
    pub fn sha256(&self) -> String {
        sha256_hex(self.content.as_bytes())
    }
}

/// How a cache entry came to be — echoed into served manifests so a
/// client can audit whether its bytes were computed, replayed, or
/// spliced from a warm-start donor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// `"backend"` (fully computed) or `"warm"` (spliced from a donor).
    pub outcome: String,
    /// Grid cells of the resolved spec.
    pub cells_total: u64,
    /// Cells replayed from the warm-start donor.
    pub cells_cached: u64,
    /// Cells the backend actually ran.
    pub cells_run: u64,
    /// The donor entry's key, for warm-start entries.
    pub warm_from: Option<String>,
    /// Backend pool jobs booked while producing the entry.
    pub backend_jobs: u64,
}

impl Provenance {
    /// The provenance as a JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("outcome", self.outcome.as_str());
        doc.set("cells_total", self.cells_total);
        doc.set("cells_cached", self.cells_cached);
        doc.set("cells_run", self.cells_run);
        if let Some(donor) = &self.warm_from {
            doc.set("warm_from", donor.as_str());
        }
        doc.set("backend_jobs", self.backend_jobs);
        doc
    }
}

/// One complete cache entry: the artefacts plus the metadata that lets a
/// later request trust and reuse them.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The content-addressed cache key (64 hex chars).
    pub key: String,
    /// Engine version (`git describe`) the entry was computed under.
    pub version: String,
    /// The canonical resolved spec, as stored (warm-start donor
    /// matching reads this back).
    pub spec: Value,
    /// The served artefacts, in serve order (CSV before JSON).
    pub files: Vec<CachedFile>,
    /// How the entry was produced.
    pub provenance: Provenance,
}

/// The outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A verified entry: every artefact re-hashed to its recorded
    /// checksum.
    Hit(Entry),
    /// No entry under this key (cold cache or never computed).
    Miss,
    /// An entry existed but was damaged or stale; it has been deleted
    /// and the caller must recompute.
    Evicted,
}

/// Running serve-session counters, reported by `study serve` on
/// shutdown and uploaded by the CI smoke job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Requests submitted.
    pub requests: u64,
    /// Served from a verified disk entry.
    pub hits: u64,
    /// Computed from scratch.
    pub misses: u64,
    /// Spliced from a warm-start donor.
    pub warm: u64,
    /// Damaged or stale entries deleted.
    pub evictions: u64,
    /// Requests that blocked on an identical in-flight run instead of
    /// recomputing.
    pub deduped: u64,
    /// Backend study executions (the dedup test pins this to 1 for N
    /// identical concurrent submissions).
    pub backend_runs: u64,
    /// Pool jobs those executions booked.
    pub backend_jobs: u64,
}

impl CacheStats {
    /// The counters as a JSON object (the `stats` event / artifact).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("requests", self.requests);
        doc.set("hits", self.hits);
        doc.set("misses", self.misses);
        doc.set("warm", self.warm);
        doc.set("evictions", self.evictions);
        doc.set("deduped", self.deduped);
        doc.set("backend_runs", self.backend_runs);
        doc.set("backend_jobs", self.backend_jobs);
        doc
    }
}

/// The on-disk cache root. All methods are safe to call concurrently
/// from one server process; the serving layer's in-flight dedup
/// guarantees a key is only ever stored by one thread at a time.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (created lazily on first store).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The cache root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of entry `key`.
    #[must_use]
    pub fn dir(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Loads and verifies entry `key` for engine `version`. Any damage
    /// (bad metadata, missing file, checksum mismatch) or a version
    /// mismatch deletes the entry and reports [`Lookup::Evicted`].
    ///
    /// # Errors
    ///
    /// Only filesystem errors outside the entry's own content (e.g. an
    /// unreadable cache root) surface as `Err`; a damaged entry is an
    /// eviction, not an error.
    pub fn load(&self, key: &str, version: &str) -> io::Result<Lookup> {
        let dir = self.dir(key);
        if !dir.join(ENTRY_FILE).exists() {
            return Ok(Lookup::Miss);
        }
        match self.read_verified(key, &dir, version) {
            Some(entry) => Ok(Lookup::Hit(entry)),
            None => {
                self.evict(key)?;
                Ok(Lookup::Evicted)
            }
        }
    }

    /// Every loadable entry under the root, for warm-start donor
    /// scanning. Damaged entries are skipped (not evicted — the next
    /// direct lookup handles that).
    ///
    /// # Errors
    ///
    /// Propagates cache-root read errors; a missing root is an empty
    /// cache.
    pub fn entries(&self, version: &str) -> io::Result<Vec<Entry>> {
        let mut out = Vec::new();
        let read = match fs::read_dir(&self.root) {
            Ok(read) => read,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        let mut keys: Vec<String> = read
            .filter_map(Result::ok)
            .filter_map(|d| d.file_name().into_string().ok())
            .filter(|name| name.len() == 64 && name.bytes().all(|b| b.is_ascii_hexdigit()))
            .collect();
        keys.sort();
        for key in keys {
            if let Some(entry) = self.read_verified(&key, &self.dir(&key), version) {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Writes `entry` under its key: artefacts first, `entry.json` last
    /// (its presence marks completeness).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects artefact names containing
    /// path separators.
    pub fn store(&self, entry: &Entry) -> io::Result<()> {
        for file in &entry.files {
            if file.name.contains('/') || file.name.contains('\\') || file.name == ENTRY_FILE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("invalid cached file name `{}`", file.name),
                ));
            }
        }
        let dir = self.dir(&entry.key);
        fs::create_dir_all(&dir)?;
        for file in &entry.files {
            fs::write(dir.join(&file.name), file.content.as_bytes())?;
        }
        let mut doc = Value::object();
        doc.set("key", entry.key.as_str());
        doc.set("version", entry.version.as_str());
        doc.set("spec", entry.spec.clone());
        let files: Vec<Value> = entry
            .files
            .iter()
            .map(|f| {
                let mut file = Value::object();
                file.set("name", f.name.as_str());
                file.set("sha256", f.sha256());
                file.set("bytes", f.content.len() as u64);
                file
            })
            .collect();
        doc.set("files", Value::Arr(files));
        doc.set("provenance", entry.provenance.to_value());
        fs::write(dir.join(ENTRY_FILE), doc.to_json().as_bytes())
    }

    /// Deletes entry `key` (a no-op if absent).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the entry being gone.
    pub fn evict(&self, key: &str) -> io::Result<()> {
        match fs::remove_dir_all(self.dir(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reads and verifies one entry; `None` means damaged/stale.
    fn read_verified(&self, key: &str, dir: &Path, version: &str) -> Option<Entry> {
        let meta = fs::read_to_string(dir.join(ENTRY_FILE)).ok()?;
        let doc = json::parse(&meta).ok()?;
        let str_of = |v: &Value| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        };
        let recorded_key = str_of(doc.get("key")?)?;
        let recorded_version = str_of(doc.get("version")?)?;
        if recorded_key != key || recorded_version != version {
            return None;
        }
        let spec = doc.get("spec")?.clone();
        let Value::Arr(listed) = doc.get("files")? else {
            return None;
        };
        let mut files = Vec::with_capacity(listed.len());
        for item in listed {
            let name = str_of(item.get("name")?)?;
            let sha = str_of(item.get("sha256")?)?;
            let content = fs::read_to_string(dir.join(&name)).ok()?;
            if sha256_hex(content.as_bytes()) != sha {
                return None;
            }
            files.push(CachedFile { name, content });
        }
        let provenance = doc.get("provenance").and_then(parse_provenance)?;
        Some(Entry { key: key.to_owned(), version: recorded_version, spec, files, provenance })
    }
}

fn parse_provenance(doc: &Value) -> Option<Provenance> {
    let u64_of = |v: Option<&Value>| match v {
        Some(Value::Int(i)) => u64::try_from(*i).ok(),
        _ => None,
    };
    Some(Provenance {
        outcome: match doc.get("outcome") {
            Some(Value::Str(s)) => s.clone(),
            _ => return None,
        },
        cells_total: u64_of(doc.get("cells_total"))?,
        cells_cached: u64_of(doc.get("cells_cached"))?,
        cells_run: u64_of(doc.get("cells_run"))?,
        warm_from: match doc.get("warm_from") {
            Some(Value::Str(s)) => Some(s.clone()),
            None => None,
            _ => return None,
        },
        backend_jobs: u64_of(doc.get("backend_jobs"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> Entry {
        let mut spec = Value::object();
        spec.set("name", "s");
        Entry {
            key: key.to_owned(),
            version: "v1".to_owned(),
            spec,
            files: vec![
                CachedFile { name: "s.csv".to_owned(), content: "a,b\n1,2\n".to_owned() },
                CachedFile { name: "s.json".to_owned(), content: "{\"a\":1}".to_owned() },
            ],
            provenance: Provenance {
                outcome: "backend".to_owned(),
                cells_total: 4,
                cells_cached: 0,
                cells_run: 4,
                warm_from: None,
                backend_jobs: 8,
            },
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("xp_cache_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    const KEY: &str = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";

    #[test]
    fn store_then_load_round_trips_bytes_and_provenance() {
        let cache = temp_cache("round_trip");
        let entry = sample(KEY);
        cache.store(&entry).unwrap();
        match cache.load(KEY, "v1").unwrap() {
            Lookup::Hit(loaded) => assert_eq!(loaded, entry),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.entries("v1").unwrap().len(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn cold_cache_is_a_miss() {
        let cache = temp_cache("cold");
        assert_eq!(cache.load(KEY, "v1").unwrap(), Lookup::Miss);
        assert!(cache.entries("v1").unwrap().is_empty());
    }

    #[test]
    fn corruption_truncation_and_version_mismatch_evict() {
        for damage in ["truncate", "corrupt", "remove", "meta", "version"] {
            let cache = temp_cache(&format!("damage_{damage}"));
            cache.store(&sample(KEY)).unwrap();
            let dir = cache.dir(KEY);
            let mut version = "v1";
            match damage {
                "truncate" => fs::write(dir.join("s.csv"), b"a,b\n").unwrap(),
                "corrupt" => fs::write(dir.join("s.csv"), b"a,b\n9,9\n").unwrap(),
                "remove" => fs::remove_file(dir.join("s.json")).unwrap(),
                "meta" => fs::write(dir.join(ENTRY_FILE), b"{not json").unwrap(),
                "version" => version = "v2",
                _ => unreachable!(),
            }
            assert_eq!(
                cache.load(KEY, version).unwrap(),
                Lookup::Evicted,
                "damage mode {damage}"
            );
            assert!(!dir.exists(), "damage mode {damage} must delete the entry");
            // After eviction the key is a plain miss and can be restored.
            assert_eq!(cache.load(KEY, version).unwrap(), Lookup::Miss);
            let _ = fs::remove_dir_all(cache.root());
        }
    }

    #[test]
    fn store_rejects_traversal_names() {
        let cache = temp_cache("names");
        let mut entry = sample(KEY);
        entry.files[0].name = "../escape.csv".to_owned();
        assert!(cache.store(&entry).is_err());
    }
}
