//! The campaign runner: ties a grid (or an ad-hoc job list) to the worker
//! pool and the unified sinks.
//!
//! A campaign is one invocation of an experiment binary. It runs jobs on
//! the pool (large-first, deterministic output order), then writes the
//! result table through the formats selected by `--format`:
//!
//! * `<out>/<name>.csv` — exactly the CSV the binary always produced;
//! * `<out>/<name>.json` — the same rows plus a run manifest: the shared
//!   flags, binary-specific config, `git describe`, and wall time.

use std::io;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::cli::CampaignArgs;
use crate::grid::{Job, Scenario};
use crate::json::Value;
use crate::pool;
use crate::table::Table;

/// One experiment invocation: shared flags plus sink bookkeeping.
#[derive(Debug)]
pub struct Campaign {
    name: String,
    args: CampaignArgs,
    started: Instant,
}

impl Campaign {
    /// Starts a campaign named `name` (the output file stem).
    #[must_use]
    pub fn new(name: &str, args: CampaignArgs) -> Self {
        Self { name: name.to_owned(), args, started: Instant::now() }
    }

    /// The campaign name (output file stem).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared flags this campaign runs under.
    #[must_use]
    pub fn args(&self) -> &CampaignArgs {
        &self.args
    }

    /// Expands `scenario` (replicates forced to `--seeds`) and runs every
    /// job on the pool. Returns `(job, result)` pairs in grid order,
    /// independent of the worker count.
    pub fn run_grid<R, F>(&self, scenario: &Scenario, run: F) -> Vec<(Job, R)>
    where
        R: Send,
        F: Fn(&Job) -> R + Sync,
    {
        self.run_grid_budgeted(scenario, 1, run)
    }

    /// [`Campaign::run_grid`] for jobs that are internally
    /// `threads_per_job`-way parallel (e.g. sharded simulations): the
    /// pool gets `--workers / threads_per_job` workers
    /// ([`pool::budgeted_workers`]) so the thread total stays within the
    /// budget. Results are identical for every worker count either way.
    pub fn run_grid_budgeted<R, F>(
        &self,
        scenario: &Scenario,
        threads_per_job: usize,
        run: F,
    ) -> Vec<(Job, R)>
    where
        R: Send,
        F: Fn(&Job) -> R + Sync,
    {
        let scenario = scenario.clone().with_replicates(self.args.seeds);
        let jobs = scenario.jobs(self.args.campaign_seed);
        let workers = pool::budgeted_workers(self.args.workers, threads_per_job);
        let results = pool::run_jobs(&jobs, workers, Job::weight, run, Some(&self.name));
        jobs.into_iter().zip(results).collect()
    }

    /// Runs an ad-hoc job list (axes beyond the standard grid, e.g.
    /// routing × VC ablations) on the pool with the campaign's worker
    /// count. Results come back in submission order.
    pub fn run_jobs<J, R, W, F>(&self, jobs: &[J], weight: W, run: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        W: Fn(&J) -> u64,
        F: Fn(&J) -> R + Sync,
    {
        pool::run_jobs(jobs, self.args.workers, weight, run, Some(&self.name))
    }

    /// Writes `table` through the selected sinks and returns the paths
    /// written. `config` carries binary-specific manifest fields (fixed
    /// `n`, routing choice, …); pass [`Value::object()`] when empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(&self, table: &Table, config: Value) -> io::Result<Vec<PathBuf>> {
        let name = self.name.clone();
        self.finish_named(&name, table, config)
    }

    /// [`Campaign::finish`] under a different file stem — for binaries
    /// producing several artefacts (e.g. Fig. 7's absolute and normalised
    /// series).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish_named(
        &self,
        stem: &str,
        table: &Table,
        config: Value,
    ) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if self.args.format.wants_csv() {
            let path = self.args.out.join(format!("{stem}.csv"));
            table.write_to(&path)?;
            written.push(path);
        }
        if self.args.format.wants_json() {
            let path = self.args.out.join(format!("{stem}.json"));
            std::fs::create_dir_all(&self.args.out)?;
            std::fs::write(&path, self.manifest(table, config).to_json())?;
            written.push(path);
        }
        Ok(written)
    }

    /// The JSON campaign document: manifest + rows.
    fn manifest(&self, table: &Table, config: Value) -> Value {
        let mut doc = Value::object();
        doc.set("campaign", self.name.as_str());
        doc.set("git", git_describe());
        doc.set(
            "created_unix_s",
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs()),
        );
        doc.set("wall_s", self.started.elapsed().as_secs_f64());

        let mut shared = Value::object();
        shared.set("workers", self.args.workers);
        shared.set("seeds", self.args.seeds);
        shared.set("quick", self.args.quick);
        shared.set("full", self.args.full);
        shared.set("format", self.args.format.label());
        shared.set("campaign_seed", self.args.campaign_seed);
        doc.set("args", shared);
        doc.set("config", config);

        let columns: Vec<Value> =
            table.header().iter().map(|c| Value::Str(c.clone())).collect();
        doc.set("columns", Value::Arr(columns));
        let rows: Vec<Value> = table
            .rows()
            .iter()
            .map(|row| {
                let mut obj = Value::object();
                for (col, cell) in table.header().iter().zip(row) {
                    // Numeric cells become JSON numbers (non-finite ones
                    // `null`, keeping each column single-typed);
                    // everything else stays a string.
                    match cell.parse::<f64>() {
                        Ok(x) if x.is_finite() => obj.set(col, x),
                        Ok(_) => obj.set(col, Value::Null),
                        Err(_) => obj.set(col, cell.as_str()),
                    };
                }
                obj
            })
            .collect();
        doc.set("rows", Value::Arr(rows));
        doc
    }
}

/// `git describe --always --dirty`, or `"unknown"` outside a git checkout.
fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_owned(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_owned(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::OutputFormat;
    use hexamesh::arrangement::ArrangementKind;

    fn test_args(out: &std::path::Path) -> CampaignArgs {
        CampaignArgs {
            workers: 4,
            seeds: 2,
            quick: true,
            full: false,
            out: out.to_path_buf(),
            format: OutputFormat::Both,
            campaign_seed: 7,
        }
    }

    #[test]
    fn grid_campaign_runs_and_writes_both_sinks() {
        let dir = std::env::temp_dir().join("xp_campaign_test");
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("unit", test_args(&dir));
        let scenario = Scenario::new(&[ArrangementKind::Grid], &[2, 3]);
        let results = campaign.run_grid(&scenario, |job| job.n * 10);
        // 2 ns × --seeds 2 replicates.
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|(job, r)| *r == job.n * 10));

        let mut table = Table::new(&["n", "value"]);
        for (job, r) in &results {
            table.row(&[&job.n, r]);
        }
        let written = campaign.finish(&table, Value::object()).unwrap();
        assert_eq!(written.len(), 2);
        let csv = std::fs::read_to_string(&written[0]).unwrap();
        assert!(csv.starts_with("n,value\n2,20\n"));
        let json = std::fs::read_to_string(&written[1]).unwrap();
        assert!(json.contains("\"campaign\":\"unit\""));
        assert!(json.contains("\"seeds\":2"));
        assert!(json.contains("\"rows\":[{\"n\":2,\"value\":20}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_results_identical_across_worker_counts() {
        let dir = std::env::temp_dir().join("xp_campaign_det");
        let scenario =
            Scenario::new(&ArrangementKind::EVALUATED, &[2, 3, 4]).with_rates(&[0.1, 0.2]);
        let run = |workers: usize| {
            let mut args = test_args(&dir);
            args.workers = workers;
            Campaign::new("det", args)
                .run_grid(&scenario, |job| (job.seed, job.n, job.replicate))
        };
        assert_eq!(run(1), run(8));
    }
}
