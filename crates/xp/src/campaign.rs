//! The campaign runner: ties a grid (or an ad-hoc job list) to the worker
//! pool and the unified sinks.
//!
//! A campaign is one invocation of an experiment binary. It runs jobs on
//! the pool (large-first, deterministic output order), then writes the
//! result table through the formats selected by `--format`:
//!
//! * `<out>/<name>.csv` — exactly the CSV the binary always produced;
//! * `<out>/<name>.json` — the same rows plus a run manifest: the shared
//!   flags, binary-specific config, `git describe`, and wall time.

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use obs::{ArgValue, TraceBuilder, TraceSpan};

use crate::cli::CampaignArgs;
use crate::grid::{Job, Scenario};
use crate::json::Value;
use crate::pool::{self, PoolOptions, PoolReport};
use crate::table::Table;

/// Accounting for one pool run, keyed by the stage label that was active
/// when it ran. Recorded for every study and folded into the manifest's
/// `stages` map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage label ([`Campaign::set_stage`]; defaults to the campaign
    /// name).
    pub stage: String,
    /// Jobs the pool ran.
    pub jobs: usize,
    /// Wall time of the pool run, milliseconds.
    pub wall_ms: u64,
    /// High-water mark of concurrently busy workers.
    pub peak_workers: usize,
}

/// Engine-trace collection state: the span sink plus which thread tracks
/// have been named already.
#[derive(Debug, Default)]
struct TraceState {
    builder: TraceBuilder,
    named_tids: BTreeSet<u64>,
}

/// One experiment invocation: shared flags plus sink bookkeeping.
#[derive(Debug)]
pub struct Campaign {
    name: String,
    args: CampaignArgs,
    started: Instant,
    stage: Mutex<String>,
    stages: Mutex<Vec<StageRecord>>,
    trace: Mutex<Option<TraceState>>,
}

impl Campaign {
    /// Starts a campaign named `name` (the output file stem).
    #[must_use]
    pub fn new(name: &str, args: CampaignArgs) -> Self {
        Self {
            name: name.to_owned(),
            args,
            started: Instant::now(),
            stage: Mutex::new(name.to_owned()),
            stages: Mutex::new(Vec::new()),
            trace: Mutex::new(None),
        }
    }

    /// Labels subsequent pool runs in the manifest's `stages` map and the
    /// engine trace. The label defaults to the campaign name; stages with
    /// several pool phases call this between them.
    pub fn set_stage(&self, label: &str) {
        *self.stage.lock().unwrap() = label.to_owned();
    }

    /// Starts collecting engine-level spans (one per pool job) for
    /// [`Campaign::write_trace`]. Off by default: span collection is
    /// cheap, but traces only get written when a study asks for them.
    pub fn enable_trace(&self) {
        let mut trace = self.trace.lock().unwrap();
        if trace.is_none() {
            let mut state = TraceState::default();
            state.builder.name_thread(0, "coordinator");
            state.named_tids.insert(0);
            *trace = Some(state);
        }
    }

    /// The stage records accumulated so far, in execution order.
    #[must_use]
    pub fn stage_records(&self) -> Vec<StageRecord> {
        self.stages.lock().unwrap().clone()
    }

    /// Writes the collected engine trace as Chrome-trace JSON to
    /// `<out>/trace.json` and returns the path; `Ok(None)` when tracing
    /// was never enabled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_trace(&self) -> io::Result<Option<PathBuf>> {
        let trace = self.trace.lock().unwrap();
        let Some(state) = trace.as_ref() else {
            return Ok(None);
        };
        std::fs::create_dir_all(&self.args.out)?;
        let path = self.args.out.join("trace.json");
        std::fs::write(&path, state.builder.to_json())?;
        Ok(Some(path))
    }

    /// Reporting knobs for a pool run under this campaign: ticker always,
    /// per-job stderr lines under `--progress`, spans when tracing.
    fn pool_options(&self) -> PoolOptions<'_> {
        PoolOptions {
            ticker: Some(&self.name),
            per_job: self.args.progress.then_some(self.name.as_str()),
            collect_spans: self.trace.lock().unwrap().is_some(),
        }
    }

    /// Books one finished pool run: appends the [`StageRecord`] and, when
    /// tracing, converts the schedule spans (offset by `epoch_offset_ns`,
    /// the campaign-relative start of the pool run) into trace spans named
    /// by `describe(job_index)`.
    fn record_pool_run(
        &self,
        jobs: usize,
        report: &PoolReport,
        epoch_offset_ns: u64,
        describe: impl Fn(usize) -> (String, Vec<(&'static str, ArgValue)>),
    ) {
        let stage = self.stage.lock().unwrap().clone();
        self.stages.lock().unwrap().push(StageRecord {
            stage: stage.clone(),
            jobs,
            wall_ms: report.wall_ns / 1_000_000,
            peak_workers: report.peak_workers,
        });
        let mut trace = self.trace.lock().unwrap();
        let Some(state) = trace.as_mut() else {
            return;
        };
        let mut stage_span = TraceSpan::new(stage, "stage", 0, epoch_offset_ns, report.wall_ns);
        stage_span.args.push(("jobs", ArgValue::from(jobs)));
        stage_span.args.push(("peak_workers", ArgValue::from(report.peak_workers)));
        state.builder.push(stage_span);
        for span in &report.spans {
            let tid = span.worker as u64 + 1;
            if state.named_tids.insert(tid) {
                state.builder.name_thread(tid, format!("worker {}", span.worker));
            }
            let (name, args) = describe(span.index);
            let mut event =
                TraceSpan::new(name, "job", tid, epoch_offset_ns + span.start_ns, span.dur_ns);
            event.args.push(("job", ArgValue::from(span.index)));
            event.args.push(("wall_ns", ArgValue::from(span.dur_ns)));
            event.args.extend(args);
            state.builder.push(event);
        }
    }

    /// The campaign name (output file stem).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared flags this campaign runs under.
    #[must_use]
    pub fn args(&self) -> &CampaignArgs {
        &self.args
    }

    /// Expands `scenario` (replicates forced to `--seeds`) and runs every
    /// job on the pool. Returns `(job, result)` pairs in grid order,
    /// independent of the worker count.
    pub fn run_grid<R, F>(&self, scenario: &Scenario, run: F) -> Vec<(Job, R)>
    where
        R: Send,
        F: Fn(&Job) -> R + Sync,
    {
        self.run_grid_budgeted(scenario, 1, run)
    }

    /// [`Campaign::run_grid`] for jobs that are internally
    /// `threads_per_job`-way parallel (e.g. sharded simulations): the
    /// pool gets `--workers / threads_per_job` workers
    /// ([`pool::budgeted_workers`]) so the thread total stays within the
    /// budget. Results are identical for every worker count either way.
    pub fn run_grid_budgeted<R, F>(
        &self,
        scenario: &Scenario,
        threads_per_job: usize,
        run: F,
    ) -> Vec<(Job, R)>
    where
        R: Send,
        F: Fn(&Job) -> R + Sync,
    {
        let scenario = scenario.clone().with_replicates(self.args.seeds);
        let jobs = scenario.jobs(self.args.campaign_seed);
        let workers = pool::budgeted_workers(self.args.workers, threads_per_job);
        let offset = ns_u64(self.started.elapsed());
        let (results, report) =
            pool::run_jobs_reported(&jobs, workers, Job::weight, run, self.pool_options());
        self.record_pool_run(jobs.len(), &report, offset, |i| {
            let job = &jobs[i];
            let mut coord = format!("{} n={}", job.kind, job.n);
            if let Some(rate) = job.rate {
                let _ = std::fmt::Write::write_fmt(&mut coord, format_args!(" rate={rate}"));
            }
            let args = vec![
                ("coord", ArgValue::from(coord.clone())),
                ("replicate", ArgValue::from(job.replicate)),
                ("shards", ArgValue::from(threads_per_job)),
            ];
            (coord, args)
        });
        jobs.into_iter().zip(results).collect()
    }

    /// Runs an ad-hoc job list (axes beyond the standard grid, e.g.
    /// routing × VC ablations) on the pool with the campaign's worker
    /// count. Results come back in submission order.
    pub fn run_jobs<J, R, W, F>(&self, jobs: &[J], weight: W, run: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        W: Fn(&J) -> u64,
        F: Fn(&J) -> R + Sync,
    {
        let stage = self.stage.lock().unwrap().clone();
        self.run_jobs_budgeted(jobs, 1, weight, run, |i, _| format!("{stage} job {i}"))
    }

    /// [`Campaign::run_jobs`] for jobs that are internally
    /// `threads_per_job`-way parallel, with a caller-provided trace label
    /// per job (the ad-hoc twin of [`Campaign::run_grid_budgeted`]): the
    /// pool gets `--workers / threads_per_job` workers so the thread
    /// total stays within the budget. Results are identical for every
    /// worker count either way.
    pub fn run_jobs_budgeted<J, R, W, F, L>(
        &self,
        jobs: &[J],
        threads_per_job: usize,
        weight: W,
        run: F,
        label: L,
    ) -> Vec<R>
    where
        J: Sync,
        R: Send,
        W: Fn(&J) -> u64,
        F: Fn(&J) -> R + Sync,
        L: Fn(usize, &J) -> String,
    {
        let workers = pool::budgeted_workers(self.args.workers, threads_per_job);
        let offset = ns_u64(self.started.elapsed());
        let (results, report) =
            pool::run_jobs_reported(jobs, workers, weight, run, self.pool_options());
        self.record_pool_run(jobs.len(), &report, offset, |i| {
            let coord = label(i, &jobs[i]);
            let args = vec![
                ("coord", ArgValue::from(coord.clone())),
                ("shards", ArgValue::from(threads_per_job)),
            ];
            (coord, args)
        });
        results
    }

    /// Writes `table` through the selected sinks and returns the paths
    /// written. `config` carries binary-specific manifest fields (fixed
    /// `n`, routing choice, …); pass [`Value::object()`] when empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(&self, table: &Table, config: Value) -> io::Result<Vec<PathBuf>> {
        let name = self.name.clone();
        self.finish_named(&name, table, config)
    }

    /// [`Campaign::finish`] under a different file stem — for binaries
    /// producing several artefacts (e.g. Fig. 7's absolute and normalised
    /// series).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish_named(
        &self,
        stem: &str,
        table: &Table,
        config: Value,
    ) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if self.args.format.wants_csv() {
            let path = self.args.out.join(format!("{stem}.csv"));
            table.write_to(&path)?;
            written.push(path);
        }
        if self.args.format.wants_json() {
            let path = self.args.out.join(format!("{stem}.json"));
            std::fs::create_dir_all(&self.args.out)?;
            std::fs::write(&path, self.manifest(table, config).to_json())?;
            written.push(path);
        }
        Ok(written)
    }

    /// The JSON campaign document: manifest + rows.
    fn manifest(&self, table: &Table, config: Value) -> Value {
        let mut doc = Value::object();
        doc.set("campaign", self.name.as_str());
        doc.set("git", git_describe());
        doc.set(
            "created_unix_s",
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs()),
        );
        doc.set("wall_s", self.started.elapsed().as_secs_f64());

        let mut shared = Value::object();
        shared.set("workers", self.args.workers);
        shared.set("seeds", self.args.seeds);
        shared.set("quick", self.args.quick);
        shared.set("full", self.args.full);
        shared.set("format", self.args.format.label());
        shared.set("campaign_seed", self.args.campaign_seed);
        doc.set("args", shared);
        doc.set("config", config);

        // The per-stage wall-time map: every pool run books a record, so
        // every study's manifest shows where its time went and how full
        // the pool actually was.
        let records = self.stages.lock().unwrap();
        if !records.is_empty() {
            let mut stages = Value::object();
            let mut order: Vec<&str> = Vec::new();
            for rec in records.iter() {
                if !order.contains(&rec.stage.as_str()) {
                    order.push(&rec.stage);
                }
            }
            for label in order {
                let (mut jobs, mut wall_ms, mut peak) = (0usize, 0u64, 0usize);
                for rec in records.iter().filter(|r| r.stage == label) {
                    jobs += rec.jobs;
                    wall_ms += rec.wall_ms;
                    peak = peak.max(rec.peak_workers);
                }
                let mut entry = Value::object();
                entry.set("jobs", jobs);
                entry.set("wall_ms", wall_ms);
                entry.set("peak_workers", peak);
                stages.set(label, entry);
            }
            doc.set("stages", stages);
            doc.set("peak_workers", records.iter().map(|r| r.peak_workers).max().unwrap_or(0));
        }

        let (columns, rows) = table_columns_rows(table);
        doc.set("columns", columns);
        doc.set("rows", rows);
        doc
    }
}

/// The manifest's typed `columns` / `rows` encoding of a table: numeric
/// cells become JSON numbers (non-finite ones `null`, keeping each column
/// single-typed), everything else stays a string. Shared by the campaign
/// manifest and the serving layer's deterministic served manifests, so
/// the two encode rows identically.
#[must_use]
pub fn table_columns_rows(table: &Table) -> (Value, Value) {
    let columns: Vec<Value> = table.header().iter().map(|c| Value::Str(c.clone())).collect();
    let rows: Vec<Value> = table
        .rows()
        .iter()
        .map(|row| {
            let mut obj = Value::object();
            for (col, cell) in table.header().iter().zip(row) {
                match cell.parse::<f64>() {
                    Ok(x) if x.is_finite() => obj.set(col, x),
                    Ok(_) => obj.set(col, Value::Null),
                    Err(_) => obj.set(col, cell.as_str()),
                };
            }
            obj
        })
        .collect();
    (Value::Arr(columns), Value::Arr(rows))
}

/// Saturating nanosecond count of a [`Duration`] (u64 overflows after
/// ~584 years of campaign wall time).
fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// `git describe --always --dirty`, or `"unknown"` outside a git
/// checkout. Public because the serving layer folds it into cache keys:
/// a new engine version must never serve an old version's bytes.
#[must_use]
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_owned(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_owned(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::OutputFormat;
    use hexamesh::arrangement::ArrangementKind;

    fn test_args(out: &std::path::Path) -> CampaignArgs {
        CampaignArgs {
            workers: 4,
            seeds: 2,
            quick: true,
            full: false,
            out: out.to_path_buf(),
            format: OutputFormat::Both,
            campaign_seed: 7,
            progress: false,
        }
    }

    #[test]
    fn grid_campaign_runs_and_writes_both_sinks() {
        let dir = std::env::temp_dir().join("xp_campaign_test");
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("unit", test_args(&dir));
        let scenario = Scenario::new(&[ArrangementKind::Grid], &[2, 3]);
        let results = campaign.run_grid(&scenario, |job| job.n * 10);
        // 2 ns × --seeds 2 replicates.
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|(job, r)| *r == job.n * 10));

        let mut table = Table::new(&["n", "value"]);
        for (job, r) in &results {
            table.row(&[&job.n, r]);
        }
        let written = campaign.finish(&table, Value::object()).unwrap();
        assert_eq!(written.len(), 2);
        let csv = std::fs::read_to_string(&written[0]).unwrap();
        assert!(csv.starts_with("n,value\n2,20\n"));
        let json = std::fs::read_to_string(&written[1]).unwrap();
        assert!(json.contains("\"campaign\":\"unit\""));
        assert!(json.contains("\"seeds\":2"));
        assert!(json.contains("\"rows\":[{\"n\":2,\"value\":20}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_runs_book_stage_records_into_the_manifest() {
        let dir = std::env::temp_dir().join("xp_campaign_stages");
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("staged", test_args(&dir));
        campaign.set_stage("sweep");
        let scenario = Scenario::new(&[ArrangementKind::Grid], &[2]);
        let _ = campaign.run_grid(&scenario, |job| job.n);
        campaign.set_stage("refine");
        let _ = campaign.run_jobs(&[1u64, 2, 3], |_| 1, |j| j + 1);

        let records = campaign.stage_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].stage, "sweep");
        assert_eq!(records[0].jobs, 2, "1 n x --seeds 2");
        assert_eq!(records[1].stage, "refine");
        assert_eq!(records[1].jobs, 3);
        assert!(records.iter().all(|r| (1..=4).contains(&r.peak_workers)));

        let table = Table::new(&["n"]);
        let json = campaign.manifest(&table, Value::object()).to_json();
        assert!(json.contains("\"stages\":{\"sweep\":{\"jobs\":2"), "{json}");
        assert!(json.contains("\"refine\":{\"jobs\":3"), "{json}");
        assert!(json.contains("\"peak_workers\":"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enabled_trace_collects_spans_and_writes_json() {
        let dir = std::env::temp_dir().join("xp_campaign_trace");
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("traced", test_args(&dir));
        assert_eq!(campaign.write_trace().unwrap(), None, "off by default");
        campaign.enable_trace();
        let scenario = Scenario::new(&[ArrangementKind::Grid], &[2, 3]).with_rates(&[0.1]);
        let _ = campaign.run_grid(&scenario, |job| job.n);
        let path = campaign.write_trace().unwrap().expect("trace path");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"coordinator\""), "{json}");
        assert!(json.contains("Grid n=2 rate=0.1"), "{json}");
        assert!(json.contains("\"replicate\":"), "{json}");
        assert!(json.contains("\"shards\":1"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_results_identical_across_worker_counts() {
        let dir = std::env::temp_dir().join("xp_campaign_det");
        let scenario =
            Scenario::new(&ArrangementKind::EVALUATED, &[2, 3, 4]).with_rates(&[0.1, 0.2]);
        let run = |workers: usize| {
            let mut args = test_args(&dir);
            args.workers = workers;
            Campaign::new("det", args)
                .run_grid(&scenario, |job| (job.seed, job.n, job.replicate))
        };
        assert_eq!(run(1), run(8));
    }
}
