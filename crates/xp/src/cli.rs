//! The shared command-line layer of every experiment binary.
//!
//! Flag values are parsed *strictly*: a malformed value (`--n abc`) aborts
//! with a clear message instead of silently falling back to the default
//! and running the wrong experiment. The `try_*` variants return errors
//! for testability; the plain variants abort the process.

use std::path::PathBuf;
use std::str::FromStr;

/// Which sinks a campaign writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// CSV table only (the historical output).
    Csv,
    /// JSON campaign file only.
    Json,
    /// Both sinks (the default).
    Both,
}

impl OutputFormat {
    /// `true` if a CSV table should be written.
    #[must_use]
    pub fn wants_csv(self) -> bool {
        matches!(self, OutputFormat::Csv | OutputFormat::Both)
    }

    /// `true` if a JSON campaign file should be written.
    #[must_use]
    pub fn wants_json(self) -> bool {
        matches!(self, OutputFormat::Json | OutputFormat::Both)
    }

    /// Lower-case name, as accepted by `--format`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OutputFormat::Csv => "csv",
            OutputFormat::Json => "json",
            OutputFormat::Both => "both",
        }
    }
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "csv" => Ok(OutputFormat::Csv),
            "json" => Ok(OutputFormat::Json),
            "both" => Ok(OutputFormat::Both),
            other => Err(format!("expected csv|json|both, got {other:?}")),
        }
    }
}

impl std::fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The flags [`CampaignArgs::parse`] consumes — every engine binary
/// accepts these on top of its own. [`with_shared`] builds the allow-list
/// for [`reject_unknown_flags`].
pub const SHARED_FLAGS: [&str; 8] =
    ["--workers", "--seeds", "--quick", "--full", "--out", "--format", "--seed", "--progress"];

/// The shared campaign flags plus a binary's own flags, for
/// [`reject_unknown_flags`].
#[must_use]
pub fn with_shared<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    SHARED_FLAGS.iter().copied().chain(extra.iter().copied()).collect()
}

/// The first `--flag` token in `args` that is not in `allowed`, if any.
///
/// Only `--`-prefixed tokens are inspected: flag *values* (including
/// negative numbers and comma lists) never start with `--`, and
/// [`try_arg_value`] already rejects a flag directly followed by another
/// flag.
#[must_use]
pub fn unknown_flag<'a>(args: &'a [String], allowed: &[&str]) -> Option<&'a str> {
    args.iter()
        .skip(1) // args[0] is the binary path
        .map(String::as_str)
        .find(|a| a.starts_with("--") && !allowed.contains(a))
}

/// Aborts with a clear message if `args` carries a flag outside `allowed`
/// (the strict-CLI convention, extended to flag *names*: an unknown flag
/// is a typo or a feature this binary does not have, and silently
/// ignoring it runs the wrong experiment). Engine binaries pass
/// [`with_shared`]`(&["--their", "--flags"])`; analytic binaries that
/// take no flags pass `&[]`.
pub fn reject_unknown_flags(args: &[String], allowed: &[&str]) {
    if let Some(flag) = unknown_flag(args, allowed) {
        let mut sorted: Vec<&str> = allowed.to_vec();
        sorted.sort_unstable();
        die(&format!(
            "unknown flag {flag} (this binary accepts: {})",
            if sorted.is_empty() { "no flags".to_owned() } else { sorted.join(" ") }
        ));
    }
}

/// Prints `error: <msg>` and exits with status 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The raw value following `--flag`, if the flag is present.
///
/// A flag at the end of the argument list (or followed by another flag)
/// is an error: the caller asked for a value-carrying flag.
///
/// # Errors
///
/// Returns a message naming the flag when its value is missing.
pub fn try_arg_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Ok(Some(v)),
        _ => Err(format!("{flag} needs a value")),
    }
}

/// Parses the value following `--flag` as a `T`, defaulting when absent.
///
/// # Errors
///
/// Returns a message naming the flag and the offending value when the
/// value is missing or unparsable.
pub fn try_arg<T: FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match try_arg_value(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a {}, got {v:?}", std::any::type_name::<T>())),
    }
}

/// Parses `--flag value` as a `usize`; aborts on a malformed value.
#[must_use]
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    try_arg(args, flag, default).unwrap_or_else(|e| die(&e))
}

/// Parses `--flag value` as a `u64`; aborts on a malformed value.
#[must_use]
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    try_arg(args, flag, default).unwrap_or_else(|e| die(&e))
}

/// Parses `--flag value` as an `f64`; aborts on a malformed value.
#[must_use]
pub fn arg_f64(args: &[String], flag: &str, default: f64) -> f64 {
    try_arg(args, flag, default).unwrap_or_else(|e| die(&e))
}

/// `true` if `--flag` is present.
#[must_use]
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--flag a,b,c` as a comma-separated list of `T`s, or `None`
/// when the flag is absent. The shared list-flag layer behind
/// `--patterns` / `--workloads`: every experiment binary sweeping a
/// name-typed axis parses it through here, so list syntax and error
/// behaviour stay uniform.
///
/// # Errors
///
/// A missing value, an empty list, or any unparsable element is an
/// error naming the flag and the offending element (strict-CLI
/// convention: never fall back to a default on malformed input).
pub fn try_arg_list<T>(args: &[String], flag: &str) -> Result<Option<Vec<T>>, String>
where
    T: FromStr,
    T::Err: std::fmt::Display,
{
    let Some(raw) = try_arg_value(args, flag)? else {
        return Ok(None);
    };
    let items: Vec<&str> = raw.split(',').collect();
    if items.iter().any(|s| s.is_empty()) {
        return Err(format!("{flag} has an empty element in {raw:?}"));
    }
    items
        .into_iter()
        .map(|s| s.parse().map_err(|e| format!("{flag}: {e}")))
        .collect::<Result<Vec<T>, String>>()
        .map(Some)
}

/// Parses `--flag a,b,c` as a list of `T`s, defaulting when absent;
/// aborts on malformed input (see [`try_arg_list`]).
#[must_use]
pub fn arg_list<T>(args: &[String], flag: &str, default: &[T]) -> Vec<T>
where
    T: FromStr + Clone,
    T::Err: std::fmt::Display,
{
    match try_arg_list(args, flag) {
        Ok(Some(list)) => list,
        Ok(None) => default.to_vec(),
        Err(e) => die(&e),
    }
}

/// The flags shared by every campaign binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArgs {
    /// Worker threads (`--workers`, default: available parallelism).
    pub workers: usize,
    /// Replicate seeds per grid point (`--seeds`, default 1).
    pub seeds: u64,
    /// Short measurement windows (`--quick`).
    pub quick: bool,
    /// Paper-scale measurement windows (`--full`); mutually exclusive
    /// with `--quick`. When neither is given, binaries use their
    /// historical middle-ground schedule.
    pub full: bool,
    /// Output directory (`--out`, default `results`).
    pub out: PathBuf,
    /// Which sinks to write (`--format csv|json|both`, default both).
    pub format: OutputFormat,
    /// Campaign master seed (`--seed`, default the simulator's paper
    /// seed) from which every job seed is derived.
    pub campaign_seed: u64,
    /// Per-job completion lines on stderr (`--progress`, off by
    /// default). Never touches stdout, so golden CSV output stays
    /// byte-identical.
    pub progress: bool,
}

impl CampaignArgs {
    /// Parses the shared flags, aborting with a clear message on
    /// malformed values or conflicting flags.
    #[must_use]
    pub fn parse(args: &[String]) -> Self {
        Self::try_parse(args).unwrap_or_else(|e| die(&e))
    }

    /// [`CampaignArgs::parse`] returning errors instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed or conflicting
    /// flag.
    pub fn try_parse(args: &[String]) -> Result<Self, String> {
        let default_workers =
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        let workers = try_arg(args, "--workers", default_workers)?;
        if workers == 0 {
            return Err("--workers must be at least 1".to_owned());
        }
        let seeds = try_arg(args, "--seeds", 1u64)?;
        if seeds == 0 {
            return Err("--seeds must be at least 1".to_owned());
        }
        let quick = arg_flag(args, "--quick");
        let full = arg_flag(args, "--full");
        if quick && full {
            return Err("--quick and --full are mutually exclusive".to_owned());
        }
        let out = PathBuf::from(try_arg_value(args, "--out")?.unwrap_or("results").to_owned());
        let format = try_arg(args, "--format", OutputFormat::Both)?;
        let campaign_seed = try_arg(args, "--seed", 0xD2D_11CC)?;
        let progress = arg_flag(args, "--progress");
        Ok(Self { workers, seeds, quick, full, out, format, campaign_seed, progress })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_when_flags_absent() {
        let a = args(&["bin"]);
        assert_eq!(arg_usize(&a, "--n", 37), 37);
        assert_eq!(arg_f64(&a, "--rate", 0.1), 0.1);
        assert!(!arg_flag(&a, "--quick"));
        let c = CampaignArgs::try_parse(&a).unwrap();
        assert_eq!(c.seeds, 1);
        assert!(c.workers >= 1);
        assert_eq!(c.format, OutputFormat::Both);
        assert_eq!(c.out, PathBuf::from("results"));
        assert!(!c.progress, "--progress is off by default");
        let c = CampaignArgs::try_parse(&args(&["bin", "--progress"])).unwrap();
        assert!(c.progress);
    }

    #[test]
    fn values_parse() {
        let a = args(&["--n", "64", "--rate", "0.25", "--seeds", "5"]);
        assert_eq!(arg_usize(&a, "--n", 1), 64);
        assert!((arg_f64(&a, "--rate", 0.0) - 0.25).abs() < 1e-12);
        assert_eq!(CampaignArgs::try_parse(&a).unwrap().seeds, 5);
    }

    #[test]
    fn malformed_values_are_errors_not_defaults() {
        let a = args(&["--n", "abc"]);
        assert!(try_arg::<usize>(&a, "--n", 7).is_err());
        let a = args(&["--workers", "0"]);
        assert!(CampaignArgs::try_parse(&a).is_err());
        let a = args(&["--seeds", "-3"]);
        assert!(CampaignArgs::try_parse(&a).is_err());
        let a = args(&["--format", "xml"]);
        assert!(CampaignArgs::try_parse(&a).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--n"]);
        assert!(try_arg::<usize>(&a, "--n", 7).is_err());
        let a = args(&["--n", "--quick"]);
        assert!(try_arg::<usize>(&a, "--n", 7).is_err());
    }

    #[test]
    fn quick_full_conflict() {
        let a = args(&["--quick", "--full"]);
        assert!(CampaignArgs::try_parse(&a).is_err());
    }

    #[test]
    fn list_flags_parse_and_default() {
        let a = args(&["--ns", "37,61,91"]);
        assert_eq!(arg_list::<usize>(&a, "--ns", &[7]), vec![37, 61, 91]);
        assert_eq!(arg_list::<usize>(&a, "--other", &[7]), vec![7]);
        let single = args(&["--ns", "5"]);
        assert_eq!(arg_list::<usize>(&single, "--ns", &[7]), vec![5]);
    }

    #[test]
    fn malformed_list_elements_are_errors() {
        let a = args(&["--ns", "37,banana"]);
        assert!(try_arg_list::<usize>(&a, "--ns").is_err());
        let a = args(&["--ns", "37,,61"]);
        assert!(try_arg_list::<usize>(&a, "--ns").is_err());
        let a = args(&["--ns"]);
        assert!(try_arg_list::<usize>(&a, "--ns").is_err());
    }

    #[test]
    fn pattern_and_workload_lists_parse_through_the_shared_layer() {
        use chiplet_workload::WorkloadKind;
        use nocsim::TrafficPattern;
        let a = args(&["--patterns", "uniform,hotspot:4:500", "--workloads", "stencil"]);
        assert_eq!(
            arg_list::<TrafficPattern>(&a, "--patterns", &[]),
            vec![
                TrafficPattern::UniformRandom,
                TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 500 }
            ]
        );
        assert_eq!(
            arg_list::<WorkloadKind>(&a, "--workloads", &[]),
            vec![WorkloadKind::Stencil]
        );
        let bad = args(&["--patterns", "uniform,random_walk"]);
        assert!(try_arg_list::<TrafficPattern>(&bad, "--patterns").is_err());
    }

    #[test]
    fn unknown_flags_are_detected() {
        let a = args(&["bin", "--n", "37", "--quick", "--typo", "x"]);
        assert_eq!(unknown_flag(&a, &with_shared(&["--n"])), Some("--typo"));
        assert_eq!(unknown_flag(&a, &with_shared(&["--n", "--typo"])), None);
        // Values (even negative or comma-listed ones) are never flags.
        let a = args(&["bin", "--shift", "-3", "--patterns", "uniform,tornado"]);
        assert_eq!(unknown_flag(&a, &["--shift", "--patterns"]), None);
        // args[0] (the binary path) is exempt.
        let a = args(&["--weird-binary-name"]);
        assert_eq!(unknown_flag(&a, &[]), None);
    }

    #[test]
    fn format_round_trips() {
        for f in [OutputFormat::Csv, OutputFormat::Json, OutputFormat::Both] {
            assert_eq!(f.label().parse::<OutputFormat>().unwrap(), f);
            assert_eq!(f.to_string().parse::<OutputFormat>().unwrap(), f);
        }
        assert!(OutputFormat::Csv.wants_csv() && !OutputFormat::Csv.wants_json());
        assert!(OutputFormat::Both.wants_csv() && OutputFormat::Both.wants_json());
    }
}
