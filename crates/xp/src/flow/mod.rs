//! The study flow: executes a [`StudySpec`] through the engine.
//!
//! [`run_study`] is the one runner behind every experiment binary: it
//! resolves the spec's axes against the stage defaults, compiles them
//! onto the existing [`crate::grid::Scenario`] / ad-hoc-job machinery,
//! runs the jobs through a [`Campaign`] (worker pool, coordinate-derived
//! seeds, replicate aggregation), and writes the result tables through
//! the unified sinks — with the resolved spec embedded as the manifest's
//! `config` object, so every output file records the study that produced
//! it.
//!
//! The stages that replaced hand-wired binaries (`fig7_simulation`,
//! `load_curves`, `ablation_traffic`, `workload_comparison`,
//! `kite_comparison`, `arrangement_search`) emit **byte-identical CSV**
//! to what those binaries always wrote for the same axes and seeds —
//! pinned by the golden tests in `crates/bench/tests/golden_study.rs`.
//!
//! # Hooks
//!
//! One stage cannot live here: the arrangement *search* is implemented by
//! `chiplet_arrange`, which sits **above** the engine in the dependency
//! DAG (its restart pool runs on `xp`). [`StageHooks`] is the extension
//! point: `chiplet_arrange::study::hooks()` provides the search stage and
//! the `optimized`-axis graph provider, and the `study` binary wires them
//! in. A spec that needs a missing hook fails with a clear
//! [`StudyError::Spec`] instead of running the wrong experiment.

pub mod sweep;

use std::fmt;
use std::io;

use chiplet_graph::Graph;
use chiplet_workload::trace::{self, TraceError};
use chiplet_workload::{DriverError, WorkloadDriver, WorkloadKind};
use hexamesh::arrangement::{Arrangement, ArrangementError, ArrangementKind};
use hexamesh::eval::{normalize, EvalError, EvalParams, EvalResult};
use hexamesh::link::{estimate_link, LinkParams, UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh::shape::{shape_for, ShapeError, ShapeParams};
use nocsim::measure as noc_measure;
use nocsim::{
    LoadPointObservation, MeasureConfig, Probe, RouterModelKind, ShardedSimulator, SimConfig,
    SimError, Simulator, TrafficPattern,
};

use crate::campaign::StageRecord;
use crate::cli::CampaignArgs;
use crate::grid::{expand_replicates, kind_code, pattern_code, Scenario, OPTIMIZED_KIND_CODE};
use crate::spec::{StageKind, StudySpec};
use crate::stats::mean_of;
use crate::table::{f3, Table};
use crate::Campaign;

/// Label of search-discovered arrangement rows in every stage that can
/// carry them.
pub const OPTIMIZED_LABEL: &str = "OPT";

/// One unified error for the study flow, wrapping the per-crate errors of
/// every stage.
#[derive(Debug)]
#[non_exhaustive]
pub enum StudyError {
    /// The spec is invalid or needs a hook that was not provided.
    Spec(String),
    /// Filesystem error while writing sinks or traces.
    Io(io::Error),
    /// Arrangement construction failed.
    Arrangement(ArrangementError),
    /// The evaluation pipeline failed.
    Eval(EvalError),
    /// The simulator rejected a configuration.
    Sim(SimError),
    /// A closed-loop workload run failed (deadlock suspicion, stall).
    Workload(DriverError),
    /// A workload trace could not be written.
    Trace(TraceError),
    /// A topology evaluation failed (kite stage).
    Topo(chiplet_topo::TopoEvalError),
    /// The thermal solver failed.
    Thermal(chiplet_thermal::ThermalError),
    /// The cost model rejected a configuration.
    Cost(chiplet_cost::CostError),
    /// Chiplet-shape solving failed.
    Shape(ShapeError),
    /// A hook-provided stage failed.
    Stage(String),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Spec(msg) => write!(f, "invalid study spec: {msg}"),
            StudyError::Io(e) => write!(f, "i/o error: {e}"),
            StudyError::Arrangement(e) => write!(f, "arrangement error: {e}"),
            StudyError::Eval(e) => write!(f, "evaluation error: {e}"),
            StudyError::Sim(e) => write!(f, "simulator error: {e}"),
            StudyError::Workload(e) => write!(f, "workload error: {e}"),
            StudyError::Trace(e) => write!(f, "trace error: {e}"),
            StudyError::Topo(e) => write!(f, "topology evaluation error: {e}"),
            StudyError::Thermal(e) => write!(f, "thermal error: {e}"),
            StudyError::Cost(e) => write!(f, "cost model error: {e}"),
            StudyError::Shape(e) => write!(f, "shape error: {e}"),
            StudyError::Stage(msg) => write!(f, "stage error: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for StudyError {
            fn from(e: $ty) -> Self {
                StudyError::$variant(e)
            }
        }
    };
}
from_error!(Io, io::Error);
from_error!(Arrangement, ArrangementError);
from_error!(Eval, EvalError);
from_error!(Sim, SimError);
from_error!(Workload, DriverError);
from_error!(Trace, TraceError);
from_error!(Topo, chiplet_topo::TopoEvalError);
from_error!(Thermal, chiplet_thermal::ThermalError);
from_error!(Cost, chiplet_cost::CostError);
from_error!(Shape, ShapeError);

/// One result table of a stage. `stem: None` writes under the campaign
/// name; stages producing companion artefacts (the saturation stage's
/// normalised series) name them explicitly.
#[derive(Debug, Clone)]
pub struct StageTable {
    /// Output file stem; `None` = the campaign name.
    pub stem: Option<String>,
    /// The rows, in final sink order.
    pub table: Table,
}

impl StageTable {
    /// A table written under the campaign name.
    #[must_use]
    pub fn main(table: Table) -> Self {
        Self { stem: None, table }
    }
}

/// What a stage produced: its tables plus human-readable summary lines
/// (printed by the binaries after the files are written).
#[derive(Debug, Clone, Default)]
pub struct StageOutput {
    /// Result tables, in write order.
    pub tables: Vec<StageTable>,
    /// Summary lines for stdout.
    pub summary: Vec<String>,
}

/// The full report of a study run.
#[derive(Debug)]
pub struct StudyReport {
    /// Paths written through the sinks, in write order.
    pub written: Vec<std::path::PathBuf>,
    /// The stage's summary lines.
    pub summary: Vec<String>,
    /// The stage's tables (for tests and programmatic callers).
    pub tables: Vec<StageTable>,
    /// Pool stage records booked during the run (job counts, wall time,
    /// peak workers) — the serving layer's evidence of how much backend
    /// work a request actually caused (a cache hit books none).
    pub stages: Vec<StageRecord>,
}

/// A search-stage implementation: runs the arrangement search for the
/// spec and returns its tables.
pub type SearchStageFn =
    dyn Fn(&StudySpec, &Campaign) -> Result<StageOutput, StudyError> + Sync;

/// An `optimized`-axis provider: the ICI graph of the best searched
/// arrangement at `n` under the spec's search parameters and the
/// campaign flags. Must be deterministic in `(spec, campaign seed)` and
/// independent of `--workers`.
pub type OptimizedGraphFn =
    dyn Fn(usize, &StudySpec, &CampaignArgs) -> Result<Graph, StudyError> + Sync;

/// Stage implementations injected from crates above the engine in the
/// dependency DAG (see the module docs). `chiplet_arrange::study::hooks()`
/// is the standard provider.
#[derive(Clone, Copy, Default)]
pub struct StageHooks<'a> {
    /// The search stage.
    pub search: Option<&'a SearchStageFn>,
    /// The `optimized` axis of the load-curve and workload stages.
    pub optimized_graph: Option<&'a OptimizedGraphFn>,
}

impl fmt::Debug for StageHooks<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageHooks")
            .field("search", &self.search.is_some())
            .field("optimized_graph", &self.optimized_graph.is_some())
            .finish()
    }
}

/// Parses the shared campaign flags and applies the spec's defaults for
/// the flags that are absent from `argv`: `seed`, `replicates`, and the
/// output directory (including the `to_repo_root` tracked-baseline
/// convention).
///
/// # Errors
///
/// Returns the first malformed flag, exactly like
/// [`CampaignArgs::try_parse`].
pub fn campaign_args_for(spec: &StudySpec, argv: &[String]) -> Result<CampaignArgs, String> {
    let mut args = CampaignArgs::try_parse(argv)?;
    apply_spec_defaults(spec, &mut args, argv);
    Ok(args)
}

/// The flag-application half of [`campaign_args_for`], for callers that
/// already parsed (and possibly adjusted) their [`CampaignArgs`].
pub fn apply_spec_defaults(spec: &StudySpec, args: &mut CampaignArgs, argv: &[String]) {
    let has = |flag: &str| argv.iter().any(|a| a == flag);
    if let Some(seed) = spec.seed {
        if !has("--seed") {
            args.campaign_seed = seed;
        }
    }
    if let Some(replicates) = spec.replicates {
        if !has("--seeds") {
            args.seeds = replicates.max(1);
        }
    }
    if !has("--out") {
        if spec.output.to_repo_root {
            args.out = std::path::PathBuf::from(".");
        } else if let Some(dir) = &spec.output.dir {
            args.out = std::path::PathBuf::from(dir);
        }
    }
}

/// Runs a study end to end: resolve the spec, execute its stage on the
/// campaign pool, write the sinks. Returns the paths written and the
/// stage's summary lines. Rows are byte-identical for any
/// `args.workers` value (the engine's standard contract).
///
/// # Errors
///
/// Returns a [`StudyError`] wrapping the failing layer's error; an
/// invalid spec or a missing hook fails before any job runs.
pub fn run_study(
    spec: &StudySpec,
    args: CampaignArgs,
    hooks: &StageHooks,
) -> Result<StudyReport, StudyError> {
    spec.validate().map_err(StudyError::Spec)?;
    let resolved = resolved_axes(spec, &args);
    let spec = &resolved;
    let campaign = Campaign::new(&spec.name, args);
    if spec.observe.trace {
        campaign.enable_trace();
    }
    let output = run_stage(spec, &campaign, hooks)?;
    let config = spec.to_value();
    let mut written = Vec::new();
    for staged in &output.tables {
        let stem = staged.stem.clone().unwrap_or_else(|| campaign.name().to_owned());
        written.extend(campaign.finish_named(&stem, &staged.table, config.clone())?);
    }
    if spec.observe.trace {
        if let Some(path) = campaign.write_trace()? {
            written.push(path);
        }
    }
    Ok(StudyReport {
        written,
        summary: output.summary,
        tables: output.tables,
        stages: campaign.stage_records(),
    })
}

/// Executes the spec's stage on an existing campaign and returns its
/// tables without touching the sinks — the serving layer's entry point
/// ([`run_study`] is this plus validation, axis resolution, and the
/// sink writes). The spec should already be validated; axes the caller
/// left unresolved fall back to the stage defaults.
///
/// # Errors
///
/// Returns a [`StudyError`] wrapping the failing layer's error.
pub fn run_stage(
    spec: &StudySpec,
    campaign: &Campaign,
    hooks: &StageHooks,
) -> Result<StageOutput, StudyError> {
    campaign.set_stage(spec.stage.name());
    match spec.stage {
        StageKind::Proxies => proxies_stage(spec, campaign),
        StageKind::Saturation => saturation_stage(spec, campaign),
        StageKind::Traffic => traffic_stage(spec, campaign),
        StageKind::LoadCurve => load_curve_stage(spec, campaign, hooks),
        StageKind::Workload => workload_stage(spec, campaign, hooks),
        StageKind::Kite => kite_stage(spec, campaign),
        StageKind::Thermal => thermal_stage(spec, campaign),
        StageKind::Cost => cost_stage(spec, campaign),
        StageKind::Resilience => resilience_stage(spec, campaign),
        StageKind::Router => router_stage(spec, campaign),
        StageKind::Search => match hooks.search {
            Some(run) => run(spec, campaign),
            None => Err(StudyError::Spec(
                "the search stage runs through a hook (chiplet_arrange::study::hooks()); \
                 use the `study` binary or pass the hooks explicitly"
                    .to_owned(),
            )),
        },
    }
}

/// The spec with every stage-default axis written out explicitly — the
/// *resolved* form. [`run_study`] resolves internally (so the manifest's
/// `config` echoes the grid that actually ran), and the serving layer
/// keys its content-addressed cache on the resolved form: a spec that
/// spells an axis out and one that leans on the stage default resolve —
/// and therefore hash — identically.
///
/// Only axes the stage consumes are filled, so a resolved spec still
/// passes [`StudySpec::validate`]. Two stages keep their axes as
/// written: resilience (its structural and degradation tables resolve
/// *different* kind defaults) and search (its axes belong to the hook).
#[must_use]
pub fn resolved_axes(spec: &StudySpec, args: &CampaignArgs) -> StudySpec {
    let mut resolved = spec.clone();
    let axes = &mut resolved.axes;
    match spec.stage {
        StageKind::Proxies => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::EVALUATED.to_vec());
            axes.ns.get_or_insert_with(|| (1..=100).collect());
        }
        StageKind::Saturation => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::EVALUATED.to_vec());
            axes.ns.get_or_insert_with(|| (2..=100).collect());
            axes.patterns.get_or_insert_with(|| vec![TrafficPattern::UniformRandom]);
        }
        StageKind::Traffic => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::EVALUATED.to_vec());
            axes.ns.get_or_insert_with(|| vec![37]);
            axes.patterns.get_or_insert_with(|| DEFAULT_TRAFFIC_PATTERNS.to_vec());
        }
        StageKind::LoadCurve => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::EVALUATED.to_vec());
            axes.ns.get_or_insert_with(|| vec![37]);
            axes.rates.get_or_insert_with(default_curve_rates);
            axes.patterns.get_or_insert_with(|| vec![TrafficPattern::UniformRandom]);
        }
        StageKind::Workload => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::ALL.to_vec());
            axes.ns.get_or_insert_with(|| {
                if args.quick {
                    vec![7, 13, 19]
                } else {
                    vec![37, 61, 91]
                }
            });
            axes.workloads.get_or_insert_with(|| WorkloadKind::ALL.to_vec());
        }
        StageKind::Kite => {
            axes.ns.get_or_insert_with(|| vec![16, 25, 36, 49]);
        }
        StageKind::Thermal => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::EVALUATED.to_vec());
            axes.ns.get_or_insert_with(|| vec![16, 37, 64]);
        }
        StageKind::Cost => {
            axes.ns.get_or_insert_with(|| vec![2, 4, 8, 16, 25, 36, 49, 64, 100]);
        }
        StageKind::Router => {
            axes.kinds.get_or_insert_with(|| ArrangementKind::ALL.to_vec());
            axes.ns.get_or_insert_with(|| {
                if args.quick {
                    vec![7, 13]
                } else {
                    vec![37, 91, 169]
                }
            });
            axes.routers.get_or_insert_with(|| RouterModelKind::ALL.to_vec());
            // `workloads` stays as written: unset means open-loop only
            // (no makespan columns), which is a different table shape,
            // not a default to fill in.
        }
        StageKind::Resilience | StageKind::Search => {}
    }
    resolved
}

// ── shared resolution helpers ───────────────────────────────────────────

fn kinds_or(spec: &StudySpec, default: &[ArrangementKind]) -> Vec<ArrangementKind> {
    spec.axes.kinds.clone().unwrap_or_else(|| default.to_vec())
}

fn ns_or(spec: &StudySpec, default: Vec<usize>) -> Vec<usize> {
    spec.axes.ns.clone().unwrap_or(default)
}

/// The saturation-search schedule: the spec's explicit [`crate::spec::Schedule`],
/// or the historical `--quick`/default/`--full` windows.
fn measure_for(spec: &StudySpec, args: &CampaignArgs) -> MeasureConfig {
    let mut schedule = sweep::schedule_for(args);
    if let Some(over) = &spec.schedule {
        over.apply(&mut schedule);
    }
    if let Some(shards) = spec.sim.shards {
        schedule.shards = shards;
    }
    schedule
}

/// Paper-default [`SimConfig`] with the spec's overrides applied.
fn base_sim(spec: &StudySpec) -> SimConfig {
    let mut sim = SimConfig::paper_defaults();
    if let Some(routing) = spec.sim.routing {
        sim.routing = routing;
    }
    if let Some(vcs) = spec.sim.vcs {
        sim.vcs = vcs;
    }
    if let Some(depth) = spec.sim.buffer_depth {
        sim.buffer_depth = depth;
    }
    // A named model and a non-neutral `[router]` section are mutually
    // exclusive (validated), so applying both in sequence is exact.
    if let Some(kind) = spec.sim.router {
        sim.router = kind.model();
    }
    sim.router = spec.router.apply(sim.router);
    sim
}

fn require_optimized_hook<'a>(
    spec: &StudySpec,
    hooks: &StageHooks<'a>,
) -> Result<Option<&'a OptimizedGraphFn>, StudyError> {
    if !spec.axes.optimized {
        return Ok(None);
    }
    hooks.optimized_graph.map(Some).ok_or_else(|| {
        StudyError::Spec(
            "axes.optimized needs the search-backed graph hook \
             (chiplet_arrange::study::hooks()); use the `study` binary or pass the hooks \
             explicitly"
                .to_owned(),
        )
    })
}

// ── proxies stage ───────────────────────────────────────────────────────

fn proxies_stage(spec: &StudySpec, _campaign: &Campaign) -> Result<StageOutput, StudyError> {
    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, (1..=100).collect());
    let points = sweep::proxy_sweep_over(&kinds, &ns);
    let mut table = Table::new(&["kind", "regularity", "n", "diameter", "bisection"]);
    for p in &points {
        table.row(&[
            &p.kind.label(),
            &p.regularity.to_string(),
            &p.n,
            &p.diameter,
            &f3(p.bisection),
        ]);
    }
    let mut summary = Vec::new();
    let last_n = *ns.iter().max().expect("validated non-empty");
    let at = |kind: ArrangementKind| points.iter().find(|p| p.kind == kind && p.n == last_n);
    if let (Some(g), Some(hm)) = (at(ArrangementKind::Grid), at(ArrangementKind::HexaMesh)) {
        summary.push(format!(
            "proxies at N = {last_n}: diameter HM/G = {:.2}, bisection HM/G = {:.2}",
            f64::from(hm.diameter) / f64::from(g.diameter.max(1)),
            hm.bisection / g.bisection.max(f64::MIN_POSITIVE),
        ));
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

// ── saturation stage (the Fig. 7 pipeline) ──────────────────────────────

fn saturation_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, (2..=100).collect());
    let pattern = spec.axes.patterns.as_ref().map_or(TrafficPattern::UniformRandom, |p| p[0]);
    let fanout = spec.saturation.fanout.unwrap_or(1).max(1);
    let mut params = EvalParams::paper_defaults();
    params.sim = base_sim(spec);
    params.measure = measure_for(spec, campaign.args());

    eprintln!(
        "{}: evaluating {} chiplet counts x {} kinds x {} seeds on {} workers (quick={}, routing={})",
        campaign.name(),
        ns.len(),
        kinds.len(),
        campaign.args().seeds,
        campaign.args().workers,
        campaign.args().quick,
        params.sim.routing,
    );
    let results =
        sweep::evaluation_campaign_over(&kinds, &ns, pattern, &params, campaign, fanout);

    // ── Absolute series (Fig. 7a / 7b) ──────────────────────────────────
    let mut table = Table::new(&[
        "kind",
        "regularity",
        "n",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "link_bandwidth_gbps",
        "full_global_bandwidth_tbps",
        "saturation_throughput_tbps",
        "diameter",
    ]);
    for r in &results {
        table.row(&[
            &r.kind.label(),
            &r.regularity.to_string(),
            &r.n,
            &f3(r.zero_load_latency_cycles),
            &f3(r.saturation_fraction),
            &f3(r.link_bandwidth_gbps),
            &f3(r.full_global_bandwidth_tbps),
            &f3(r.saturation_throughput_tbps),
            &r.diameter,
        ]);
    }
    let mut output = StageOutput::default();
    output.tables.push(StageTable::main(table));

    // ── Normalised series (Fig. 7c / 7d) ────────────────────────────────
    if let Some(norm_stem) = &spec.saturation.normalized_stem {
        let by_kind = |kind: ArrangementKind| -> Vec<EvalResult> {
            results.iter().copied().filter(|r| r.kind == kind).collect()
        };
        let grid = by_kind(ArrangementKind::Grid);
        if grid.is_empty() {
            return Err(StudyError::Spec(
                "saturation.normalized_stem needs the grid baseline in axes.kinds".to_owned(),
            ));
        }
        let mut normalized = Table::new(&["kind", "n", "latency_pct", "throughput_pct"]);
        output
            .summary
            .push("summary (averages over N >= 10, relative to the grid):".to_owned());
        output.summary.push(
            "  paper:    BW latency ~80%, throughput ~112%;  HM latency ~80%, throughput ~134%"
                .to_owned(),
        );
        for &kind in kinds.iter().filter(|&&k| k != ArrangementKind::Grid) {
            let series = normalize(&by_kind(kind), &grid);
            for p in &series {
                normalized.row(&[
                    &kind.label(),
                    &p.n,
                    &f3(p.latency_pct),
                    &f3(p.throughput_pct),
                ]);
            }
            // The paper's averages are over N >= 10, where layouts
            // stabilise.
            let lat: Vec<f64> =
                series.iter().filter(|p| p.n >= 10).map(|p| p.latency_pct).collect();
            let thr: Vec<f64> =
                series.iter().filter(|p| p.n >= 10).map(|p| p.throughput_pct).collect();
            let (lat, thr) = (
                crate::stats::mean(&lat).unwrap_or(f64::NAN),
                crate::stats::mean(&thr).unwrap_or(f64::NAN),
            );
            output.summary.push(format!(
                "  measured: {} latency {lat:.1}% (Δ {:+.1}%), throughput {thr:.1}% (Δ {:+.1}%)",
                kind.label(),
                lat - 100.0,
                thr - 100.0
            ));
        }
        output.tables.push(StageTable { stem: Some(norm_stem.clone()), table: normalized });
    }
    Ok(output)
}

// ── traffic stage (pattern-sensitivity ablation) ────────────────────────

/// The historical default sweep: benign baseline + four adversaries.
const DEFAULT_TRAFFIC_PATTERNS: [TrafficPattern; 5] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::BitComplement,
    TrafficPattern::BitReverse,
    TrafficPattern::Tornado,
    TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 500 },
];

fn traffic_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, vec![37]);
    let patterns =
        spec.axes.patterns.clone().unwrap_or_else(|| DEFAULT_TRAFFIC_PATTERNS.to_vec());
    let schedule = measure_for(spec, campaign.args());
    let sim = base_sim(spec);

    // The scenario expands kind-outermost (kind → n → rate → pattern →
    // replicate); the sort below restores the historical pattern-major
    // row order after aggregation.
    let scenario = Scenario::new(&kinds, &ns).with_patterns(&patterns);
    let results = campaign.run_grid_budgeted(&scenario, schedule.shards, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let graph = arrangement.graph();
        let mut config = sim;
        config.pattern = job.pattern;
        config.seed = job.seed;
        let zero_load =
            noc_measure::zero_load_latency(graph, &config).expect("connected graph");
        let sat = noc_measure::saturation_search(graph, &config, &schedule)
            .expect("valid configuration");
        (zero_load, sat.throughput)
    });

    let mut table = Table::new(&[
        "n",
        "pattern",
        "kind",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "saturation_vs_grid",
    ]);

    // Aggregate replicates, then reorder to the historical pattern-major
    // row order (the grid expands kind-major).
    let k = campaign.args().seeds.max(1) as usize;
    let mut by_point: Vec<(TrafficPattern, usize, ArrangementKind, f64, f64)> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            (
                job.pattern,
                job.n,
                job.kind,
                mean_of(chunk, |(_, (l, _))| *l),
                mean_of(chunk, |(_, (_, s))| *s),
            )
        })
        .collect();
    let pattern_rank =
        |p: TrafficPattern| patterns.iter().position(|&q| q == p).unwrap_or(usize::MAX);
    let kind_rank =
        |kind: ArrangementKind| kinds.iter().position(|&q| q == kind).unwrap_or(usize::MAX);
    by_point.sort_by_key(|&(p, n, kind, _, _)| (pattern_rank(p), n, kind_rank(kind)));

    let mut summary = Vec::new();
    for &(pattern, n, kind, zero_load, sat) in &by_point {
        let pattern_name = pattern.name();
        let grid_sat = by_point
            .iter()
            .find(|&&(p, m, k, _, _)| p == pattern && m == n && k == ArrangementKind::Grid)
            .map(|&(_, _, _, _, s)| s)
            .filter(|&g| g > 0.0);
        let vs_grid = grid_sat.map_or(f64::NAN, |g| sat / g);
        summary.push(format!(
            "{pattern_name:<14} n={n:<4} {:<4} lat {zero_load:>7.1} sat {sat:.3} vs grid {vs_grid:.2}",
            kind.label(),
        ));
        table.row(&[&n, &pattern_name, &kind.label(), &f3(zero_load), &f3(sat), &f3(vs_grid)]);
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

// ── load-curve stage ────────────────────────────────────────────────────

/// The metrics of one simulated curve point.
struct CurvePoint {
    accepted: f64,
    avg: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    queue_max: u64,
    queue_mean: f64,
}

/// The historical default rate sweep: 0.04 … 0.48 in 0.04 steps.
fn default_curve_rates() -> Vec<f64> {
    (1..=12u32).map(|step| f64::from(step) * 0.04).collect()
}

/// Per-point simulation windows: the spec's explicit schedule, else the
/// historical 4k/8k default (shortened by `--quick`, paper-scale under
/// `--full`).
fn curve_windows(spec: &StudySpec, args: &CampaignArgs) -> (u64, u64) {
    match &spec.schedule {
        Some(s) => (s.warmup_cycles, s.measure_cycles),
        None if args.quick => (1_500, 3_000),
        None if args.full => (5_000, 10_000),
        None => (4_000, 8_000),
    }
}

/// The load-curve result table, header only.
fn curve_table() -> Table {
    Table::new(&[
        "n",
        "kind",
        "pattern",
        "offered_flits_per_cycle",
        "accepted_flits_per_cycle",
        "avg_latency_cycles",
        "p50_latency_cycles",
        "p95_latency_cycles",
        "p99_latency_cycles",
        "max_source_queue_flits",
        "mean_source_queue_flits",
    ])
}

/// Appends one aggregated curve row: the replicate mean of `chunk`
/// (`max` for the queue high-water mark). Both the full-grid stage and
/// the partial-grid path row through here, so a cell formats
/// identically wherever it ran — the byte-identity half of the
/// warm-start contract.
fn push_curve_row(
    table: &mut Table,
    label: &str,
    n: usize,
    rate: f64,
    pattern: TrafficPattern,
    chunk: &[CurvePoint],
) {
    let of = |f: fn(&CurvePoint) -> f64| mean_of(chunk, f);
    let pattern_name = pattern.name();
    let queue_max = chunk.iter().map(|p| p.queue_max).max().unwrap_or(0);
    table.row(&[
        &n,
        &label,
        &pattern_name,
        &f3(rate),
        &f3(of(|p| p.accepted)),
        &f3(of(|p| p.avg)),
        &f3(of(|p| p.p50)),
        &f3(of(|p| p.p95)),
        &f3(of(|p| p.p99)),
        &queue_max,
        &f3(of(|p| p.queue_mean)),
    ]);
}

/// One fixed-family load-curve grid coordinate. A cell aggregates its
/// replicates into exactly one table row, and its seeds derive from the
/// coordinates alone, so a cell's row is bit-identical whether it runs
/// in the full grid, in a sub-grid, or alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveCell {
    /// Arrangement family.
    pub kind: ArrangementKind,
    /// Chiplet count.
    pub n: usize,
    /// Offered injection rate (flits per cycle per endpoint).
    pub rate: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
}

/// The load-curve grid of `spec` in grid order (kind → n → rate →
/// pattern, stage defaults for absent axes) — the stage's row order and
/// the universe the serving layer's warm-start splice walks. Excludes
/// the `optimized` axis, which has no fixed-family cells.
#[must_use]
pub fn load_curve_cells(spec: &StudySpec) -> Vec<CurveCell> {
    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, vec![37]);
    let rates = spec.axes.rates.clone().unwrap_or_else(default_curve_rates);
    let patterns =
        spec.axes.patterns.clone().unwrap_or_else(|| vec![TrafficPattern::UniformRandom]);
    let mut cells = Vec::with_capacity(kinds.len() * ns.len() * rates.len() * patterns.len());
    for &kind in &kinds {
        for &n in &ns {
            for &rate in &rates {
                for &pattern in &patterns {
                    cells.push(CurveCell { kind, n, rate, pattern });
                }
            }
        }
    }
    cells
}

/// Runs exactly `cells` of the load-curve stage on `campaign` and
/// returns their aggregated rows in cell order — the resumable /
/// partial-grid entry point behind the serving layer's warm-start.
/// Replicates expand with the engine's coordinate-derived seed rule,
/// identical to the full-grid scenario expansion, so the rows splice
/// bit-identically into a from-scratch superset run (pinned by the
/// serve battery's golden tests).
///
/// The partial path covers the plain fixed-family grid; specs using the
/// `optimized` axis or `[observe]` artefacts need a full [`run_study`].
///
/// # Errors
///
/// [`StudyError::Spec`] for an invalid spec, a non-load-curve stage, or
/// an unsupported feature.
pub fn run_load_curve_cells(
    spec: &StudySpec,
    campaign: &Campaign,
    cells: &[CurveCell],
) -> Result<Table, StudyError> {
    if spec.stage != StageKind::LoadCurve {
        return Err(StudyError::Spec(format!(
            "run_load_curve_cells runs the load_curve stage, not {}",
            spec.stage
        )));
    }
    if spec.axes.optimized || !spec.observe.is_off() {
        return Err(StudyError::Spec(
            "the partial-grid path covers the plain fixed-family grid; `axes.optimized` \
             and `[observe]` need a full run_study"
                .to_owned(),
        ));
    }
    spec.validate().map_err(StudyError::Spec)?;
    let windows = curve_windows(spec, campaign.args());
    let sim = base_sim(spec);
    let shards = spec.sim.shards.unwrap_or(1);
    let expanded =
        expand_replicates(cells, campaign.args().seeds, campaign.args().campaign_seed, |c| {
            vec![kind_code(c.kind), c.n as u64, c.rate.to_bits(), pattern_code(c.pattern)]
        });
    let results = campaign.run_jobs_budgeted(
        &expanded,
        shards,
        |&(c, _)| c.n as u64,
        |&(c, seed)| {
            let arrangement = Arrangement::build(c.kind, c.n).expect("any n builds");
            curve_point(
                arrangement.graph(),
                point_config(sim, c.rate, c.pattern, seed),
                windows,
                shards,
                None,
            )
            .0
        },
        |_, &(c, _)| format!("{} n={} rate={}", c.kind, c.n, f3(c.rate)),
    );
    let k = campaign.args().seeds.max(1) as usize;
    let mut table = curve_table();
    for (cell, chunk) in cells.iter().zip(results.chunks(k)) {
        push_curve_row(&mut table, cell.kind.label(), cell.n, cell.rate, cell.pattern, chunk);
    }
    Ok(table)
}

/// The base [`SimConfig`] with one curve point's coordinates applied.
fn point_config(sim: SimConfig, rate: f64, pattern: TrafficPattern, seed: u64) -> SimConfig {
    let mut config = sim;
    config.injection_rate = rate;
    config.pattern = pattern;
    config.seed = seed;
    config
}

fn curve_point(
    graph: &Graph,
    config: SimConfig,
    windows: (u64, u64),
    shards: usize,
    probe: Option<Probe>,
) -> (CurvePoint, Option<LoadPointObservation>) {
    let observing = probe.is_some();
    // One histogram merge serves all three tail percentiles. The sharded
    // engine is bit-identical, so `shards` never changes a row — and the
    // probe records on the side, so observing never changes one either
    // (the zero-perturbation contract, pinned by nocsim's probe tests).
    let (stats, tails, observed) = if shards > 1 {
        let mut simulator =
            ShardedSimulator::new(graph, config, shards).expect("valid configuration");
        if let Some(probe) = probe {
            simulator.attach_probe(probe);
        }
        let stats = simulator.run_to_window(windows.0, windows.1);
        let tails = simulator.latency_percentiles(&[0.50, 0.95, 0.99]);
        let observed = observing.then(|| {
            let mut o = LoadPointObservation::default();
            o.windows = simulator.obs_windows();
            o.channel_loads = simulator.channel_loads();
            o
        });
        (stats, tails, observed)
    } else {
        let mut simulator = Simulator::new(graph, config).expect("valid configuration");
        if let Some(probe) = probe {
            simulator.attach_probe(probe);
        }
        let stats = simulator.run_to_window(windows.0, windows.1);
        let tails = simulator.latency_percentiles(&[0.50, 0.95, 0.99]);
        let observed = observing.then(|| {
            let mut o = LoadPointObservation::default();
            o.windows = simulator.detach_probe();
            o.channel_loads = simulator.channel_loads();
            o
        });
        (stats, tails, observed)
    };
    let point = CurvePoint {
        accepted: stats.accepted_flits_per_cycle_per_endpoint,
        avg: stats.avg_packet_latency.unwrap_or(f64::NAN),
        p50: tails[0].unwrap_or(f64::NAN),
        p95: tails[1].unwrap_or(f64::NAN),
        p99: tails[2].unwrap_or(f64::NAN),
        queue_max: stats.max_source_queue_flits,
        queue_mean: stats.avg_source_queue_flits,
    };
    (point, observed)
}

// ── load-curve observability ────────────────────────────────────────────

/// Default probe sampling window (cycles) when `observe.sample_every` is
/// absent.
const DEFAULT_SAMPLE_EVERY: u64 = 250;

/// One observed load point: its coordinates plus what the probe saw.
struct ObservedPoint {
    /// Fixed arrangement family; `None` for search-discovered (`OPT`)
    /// rows, which have no physical placement to draw.
    kind: Option<ArrangementKind>,
    label: String,
    n: usize,
    rate: f64,
    pattern: TrafficPattern,
    replicate: u64,
    obs: LoadPointObservation,
}

/// The windowed time series of every observed point as one long table
/// (the `timeline` companion artefact).
fn timeline_table(points: &[ObservedPoint], endpoints_per_router: usize) -> Table {
    let mut table = Table::new(&[
        "kind",
        "n",
        "pattern",
        "offered_flits_per_cycle",
        "replicate",
        "window",
        "start_cycle",
        "end_cycle",
        "received_flits_per_cycle_per_endpoint",
        "avg_latency_cycles",
        "flits_in_network",
        "buffered_flits",
        "vc_starved",
        "credit_starved",
        "switch_lost",
        "link_flits",
        "max_link_flits",
    ]);
    for point in points {
        let endpoints = point.n * endpoints_per_router;
        let pattern_name = point.pattern.name();
        for w in &point.obs.windows {
            table.row(&[
                &point.label,
                &point.n,
                &pattern_name,
                &f3(point.rate),
                &point.replicate,
                &w.window,
                &w.start_cycle,
                &w.end_cycle,
                &f3(w.received_flits_per_cycle_per_endpoint(endpoints)),
                &f3(w.avg_latency().unwrap_or(f64::NAN)),
                &w.flits_in_network,
                &w.buffered_flits,
                &w.stalls.vc_starved,
                &w.stalls.credit_starved,
                &w.stalls.switch_lost,
                &w.link_flits,
                &w.max_link_flits,
            ]);
        }
    }
    table
}

/// Renders one congestion-heatmap SVG per replicate-0 observed point that
/// has a physical placement (the honeycomb and `OPT` rows are graph-only
/// and are skipped). Returns the paths written.
fn write_heatmaps(
    out: &std::path::Path,
    points: &[ObservedPoint],
) -> io::Result<Vec<std::path::PathBuf>> {
    use chiplet_layout::svg::{to_heatmap_svg, HeatOverlay, SvgStyle};

    let mut written = Vec::new();
    for point in points {
        if point.replicate != 0 {
            continue;
        }
        let Some(kind) = point.kind else {
            continue;
        };
        let arrangement = Arrangement::build(kind, point.n).expect("any n builds");
        let Some(placement) = arrangement.placement() else {
            continue;
        };
        // Fold the directed channel loads into undirected edge totals and
        // per-vertex sums, each normalised to its hottest element so the
        // full colour ramp is always used.
        let n = point.n;
        let mut vertex = vec![0u64; n];
        let mut edges: Vec<((usize, usize), u64)> = Vec::new();
        for &(src, dst, flits) in &point.obs.channel_loads {
            if let Some(sum) = vertex.get_mut(src) {
                *sum += flits;
            }
            if let Some(sum) = vertex.get_mut(dst) {
                *sum += flits;
            }
            let key = (src.min(dst), src.max(dst));
            match edges.iter_mut().find(|(k, _)| *k == key) {
                Some((_, sum)) => *sum += flits,
                None => edges.push((key, flits)),
            }
        }
        let vertex_max = vertex.iter().copied().max().unwrap_or(0).max(1) as f64;
        let edge_max = edges.iter().map(|&(_, sum)| sum).max().unwrap_or(0).max(1) as f64;
        let cell_load: Vec<f64> = vertex.iter().map(|&v| v as f64 / vertex_max).collect();
        let edge_load: Vec<(usize, usize, f64)> =
            edges.iter().map(|&((a, b), sum)| (a, b, sum as f64 / edge_max)).collect();

        let heat = HeatOverlay { cell_load: &cell_load, edge_load: &edge_load };
        let svg = to_heatmap_svg(placement, &SvgStyle::default(), &heat);
        let permille = (point.rate * 1000.0).round() as u64;
        std::fs::create_dir_all(out)?;
        let path = out.join(format!(
            "heatmap_{}_n{}_r{permille:03}_{}.svg",
            kind.name(),
            point.n,
            point.pattern.name()
        ));
        std::fs::write(&path, svg)?;
        written.push(path);
    }
    Ok(written)
}

fn load_curve_stage(
    spec: &StudySpec,
    campaign: &Campaign,
    hooks: &StageHooks,
) -> Result<StageOutput, StudyError> {
    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, vec![37]);
    let rates: Vec<f64> = spec.axes.rates.clone().unwrap_or_else(default_curve_rates);
    let patterns =
        spec.axes.patterns.clone().unwrap_or_else(|| vec![TrafficPattern::UniformRandom]);
    // Per-point simulation windows: the historical 4k/8k by default,
    // shortened by --quick, paper-scale under --full.
    let windows = curve_windows(spec, campaign.args());
    let sim = base_sim(spec);
    let shards = spec.sim.shards.unwrap_or(1);
    let optimized = require_optimized_hook(spec, hooks)?;
    // `[observe]`: probes ride along with every job (recording into
    // preallocated buffers, never changing a row) and feed the timeline
    // table and the per-point heatmaps below.
    let probe = spec.observe.wants_probe().then(|| {
        let every = spec.observe.sample_every.unwrap_or(DEFAULT_SAMPLE_EVERY);
        Probe::new(every, Probe::capacity_for(every, windows.0 + windows.1) + 1)
    });
    let mut observed_points: Vec<ObservedPoint> = Vec::new();

    let scenario = Scenario::new(&kinds, &ns).with_rates(&rates).with_patterns(&patterns);
    let results = campaign.run_grid_budgeted(&scenario, shards, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        curve_point(
            arrangement.graph(),
            point_config(sim, job.rate.expect("rate axis set"), job.pattern, job.seed),
            windows,
            shards,
            probe,
        )
    });

    let mut table = curve_table();

    // Replicates of one (kind, n, rate, pattern) point are adjacent in
    // grid order; aggregate each chunk to the replicate mean.
    let k = campaign.args().seeds.max(1) as usize;
    let mut add_rows = |jobs: &[(String, usize, f64, TrafficPattern)],
                        points: &[CurvePoint]| {
        for (job, chunk) in jobs.iter().zip(points.chunks(k)) {
            let &(ref label, n, rate, pattern) = job;
            push_curve_row(&mut table, label, n, rate, pattern, chunk);
        }
    };
    let grid_jobs: Vec<(String, usize, f64, TrafficPattern)> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            (job.kind.label().to_owned(), job.n, job.rate.expect("rate axis set"), job.pattern)
        })
        .collect();
    let mut grid_points: Vec<CurvePoint> = Vec::with_capacity(results.len());
    for (job, (point, obs)) in results {
        grid_points.push(point);
        if let Some(obs) = obs {
            observed_points.push(ObservedPoint {
                kind: Some(job.kind),
                label: job.kind.label().to_owned(),
                n: job.n,
                rate: job.rate.expect("rate axis set"),
                pattern: job.pattern,
                replicate: job.replicate,
                obs,
            });
        }
    }
    add_rows(&grid_jobs, &grid_points);

    // Search-discovered arrangement rows, appended after the fixed
    // families. Coordinates mirror the scenario's, with the reserved
    // OPT kind code, so seeds follow the engine's standard derivation.
    if let Some(graph_of) = optimized {
        for &n in &ns {
            let graph = graph_of(n, spec, campaign.args())?;
            let mut opt_jobs = Vec::new();
            for &rate in &rates {
                for &pattern in &patterns {
                    opt_jobs.push((OPTIMIZED_LABEL.to_owned(), n, rate, pattern));
                }
            }
            let expanded = expand_replicates(
                &opt_jobs,
                campaign.args().seeds,
                campaign.args().campaign_seed,
                |&(_, n, rate, pattern)| {
                    vec![OPTIMIZED_KIND_CODE, n as u64, rate.to_bits(), pattern_code(pattern)]
                },
            );
            let results = campaign.run_jobs(
                &expanded,
                |&((_, n, _, _), _)| n as u64,
                |&((_, _, rate, pattern), seed)| {
                    curve_point(
                        &graph,
                        point_config(sim, rate, pattern, seed),
                        windows,
                        shards,
                        probe,
                    )
                },
            );
            let mut points = Vec::with_capacity(results.len());
            for (index, (point, obs)) in results.into_iter().enumerate() {
                points.push(point);
                if let Some(obs) = obs {
                    let ((_, n, rate, pattern), _) = expanded[index];
                    observed_points.push(ObservedPoint {
                        kind: None,
                        label: OPTIMIZED_LABEL.to_owned(),
                        n,
                        rate,
                        pattern,
                        replicate: (index % k) as u64,
                        obs,
                    });
                }
            }
            add_rows(&opt_jobs, &points);
        }
    }

    let mut summary = vec![format!(
        "load curves over kinds={} ns={ns:?} rates={} patterns={} ({} rows)",
        kinds.len(),
        rates.len(),
        patterns.len(),
        table.len()
    )];
    let mut tables = vec![StageTable::main(table)];
    if spec.observe.timeline {
        let timeline = timeline_table(&observed_points, sim.endpoints_per_router);
        summary.push(format!("timeline: {} windowed samples", timeline.len()));
        tables.push(StageTable { stem: Some("timeline".to_owned()), table: timeline });
    }
    if spec.observe.heatmap {
        let paths = write_heatmaps(&campaign.args().out, &observed_points)?;
        summary.push(format!(
            "heatmaps: {} SVGs under {}",
            paths.len(),
            campaign.args().out.display()
        ));
    }
    Ok(StageOutput { tables, summary })
}

// ── workload stage ──────────────────────────────────────────────────────

/// Cycle budget per workload run — far above any sane makespan; the
/// driver bails out on suspected deadlock long before this.
const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

fn workload_stage(
    spec: &StudySpec,
    campaign: &Campaign,
    hooks: &StageHooks,
) -> Result<StageOutput, StudyError> {
    use chiplet_workload::WorkloadStats;

    let kinds = kinds_or(spec, &ArrangementKind::ALL);
    let ns =
        ns_or(spec, if campaign.args().quick { vec![7, 13, 19] } else { vec![37, 61, 91] });
    let workloads = spec.axes.workloads.clone().unwrap_or_else(|| WorkloadKind::ALL.to_vec());
    let max_cycles = spec.workload.max_cycles.unwrap_or(DEFAULT_MAX_CYCLES);
    let sim = base_sim(spec);
    let optimized = require_optimized_hook(spec, hooks)?;

    let run_one = |graph: &Graph, n: usize, label: &str, kind: WorkloadKind, seed: u64| {
        let mut config = sim;
        config.seed = seed;
        let endpoints = n * config.endpoints_per_router;
        let workload = kind.build(endpoints);
        let mut driver = WorkloadDriver::new(graph, config, &workload).expect("valid driver");
        let stats = driver.run(max_cycles);
        if stats.completed {
            Ok(stats)
        } else {
            Err(format!(
                "{kind} on {label} n={n} stalled at {}/{} messages",
                stats.delivered_messages,
                workload.len()
            ))
        }
    };

    let scenario = Scenario::new(&kinds, &ns).with_workloads(&workloads);
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        run_one(
            arrangement.graph(),
            job.n,
            &job.kind.to_string(),
            job.workload.expect("workload axis set"),
            job.seed,
        )
    });

    if spec.workload.traces {
        let dir = campaign.args().out.join("traces");
        std::fs::create_dir_all(&dir)?;
        let mut summary_paths = Vec::new();
        for &kind in &workloads {
            for &n in &ns {
                let endpoints = n * sim.endpoints_per_router;
                let path = dir.join(format!("{kind}_e{endpoints}.trace.csv"));
                trace::save(&kind.build(endpoints), &path)?;
                summary_paths.push(path);
            }
        }
        for path in summary_paths {
            eprintln!("wrote {}", path.display());
        }
    }

    // Aggregate replicates (bit-identical by construction, but --seeds K
    // keeps the CLI uniform), then regroup rows (workload, n)-major for
    // the ranking.
    let k = campaign.args().seeds.max(1) as usize;
    struct Row {
        workload: WorkloadKind,
        n: usize,
        label: String,
        kind_rank: usize,
        stats: WorkloadStats,
        makespan: f64,
        critical: f64,
        avg_latency: f64,
    }
    let aggregate = |chunk: &[Result<WorkloadStats, String>],
                     workload: WorkloadKind,
                     n: usize,
                     label: String,
                     kind_rank: usize|
     -> Result<Row, StudyError> {
        let stats: Vec<&WorkloadStats> = chunk
            .iter()
            .map(|r| r.as_ref().map_err(|e| StudyError::Stage(e.clone())))
            .collect::<Result<_, _>>()?;
        Ok(Row {
            workload,
            n,
            label,
            kind_rank,
            stats: stats[0].clone(),
            makespan: mean_of(&stats, |s| s.makespan as f64),
            critical: mean_of(&stats, |s| s.critical_path_cycles as f64),
            avg_latency: mean_of(&stats, |s| s.network.avg_packet_latency.unwrap_or(f64::NAN)),
        })
    };

    let kind_rank =
        |kind: ArrangementKind| kinds.iter().position(|&x| x == kind).unwrap_or(usize::MAX);
    let mut rows: Vec<Row> = Vec::new();
    for chunk in results.chunks(k) {
        let job = chunk[0].0;
        let stats: Vec<Result<WorkloadStats, String>> =
            chunk.iter().map(|(_, r)| r.clone()).collect();
        rows.push(aggregate(
            &stats,
            job.workload.expect("workload axis set"),
            job.n,
            job.kind.label().to_owned(),
            kind_rank(job.kind),
        )?);
    }

    // Search-discovered arrangement rows: same coordinates as the
    // scenario's closed-loop jobs, with the reserved OPT kind code.
    if let Some(graph_of) = optimized {
        for &n in &ns {
            let graph = graph_of(n, spec, campaign.args())?;
            let opt_jobs: Vec<WorkloadKind> = workloads.clone();
            let expanded = expand_replicates(
                &opt_jobs,
                campaign.args().seeds,
                campaign.args().campaign_seed,
                |&w| {
                    vec![
                        OPTIMIZED_KIND_CODE,
                        n as u64,
                        u64::MAX,
                        pattern_code(TrafficPattern::UniformRandom),
                        w.code(),
                    ]
                },
            );
            let opt_results = campaign.run_jobs(
                &expanded,
                |_| (n as u64) * (n as u64),
                |&(w, seed)| run_one(&graph, n, OPTIMIZED_LABEL, w, seed),
            );
            for (i, chunk) in opt_results.chunks(k).enumerate() {
                rows.push(aggregate(
                    chunk,
                    opt_jobs[i],
                    n,
                    OPTIMIZED_LABEL.to_owned(),
                    kinds.len(),
                )?);
            }
        }
    }

    let workload_rank =
        |w: WorkloadKind| workloads.iter().position(|&x| x == w).unwrap_or(usize::MAX);
    rows.sort_by_key(|r| (workload_rank(r.workload), r.n, r.kind_rank));

    let mut table = Table::new(&[
        "workload",
        "n",
        "kind",
        "messages",
        "flits",
        "makespan_cycles",
        "critical_path_cycles",
        "overhead",
        "avg_packet_latency_cycles",
        "max_source_queue_flits",
        "mean_source_queue_flits",
        "rank",
    ]);

    let group_len = kinds.len() + usize::from(spec.axes.optimized);
    let mut summary = Vec::new();
    for group in rows.chunks(group_len) {
        // Rank the kinds of one (workload, n) point by makespan (shared
        // competition ranking: identical makespans — routine for
        // brickwall vs. honeycomb — share the better rank).
        let makespans: Vec<f64> = group.iter().map(|r| r.makespan).collect();
        let rank = sweep::competition_rank(&makespans);
        for (i, row) in group.iter().enumerate() {
            let overhead = row.makespan / row.critical.max(1.0);
            table.row(&[
                &row.workload.label(),
                &row.n,
                &row.label,
                &row.stats.delivered_messages,
                &row.stats.delivered_flits,
                &f3(row.makespan),
                &f3(row.critical),
                &f3(overhead),
                &f3(row.avg_latency),
                &row.stats.network.max_source_queue_flits,
                &f3(row.stats.network.avg_source_queue_flits),
                &rank[i],
            ]);
        }
        let best_idx = rank.iter().position(|&r| r == 1).expect("non-empty group");
        let best = &group[best_idx];
        summary.push(format!(
            "{} n={}: fastest is {} ({:.0} cycles)",
            best.workload.label(),
            best.n,
            best.label,
            best.makespan
        ));
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

// ── kite stage (HexaMesh vs length-aware grid topologies, §VII) ─────────

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KiteVariant {
    Mesh,
    Ftorus,
    Express,
    HexaMesh,
}

const KITE_VARIANTS: [KiteVariant; 4] =
    [KiteVariant::Mesh, KiteVariant::Ftorus, KiteVariant::Express, KiteVariant::HexaMesh];

struct KiteRow {
    name: String,
    links: usize,
    max_degree: usize,
    min_rate_gbps: f64,
    zero_load: f64,
    sat_tbps: f64,
}

fn kite_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    use chiplet_phy::Technology;
    use chiplet_topo::{evaluate, EvalOptions};

    let ns = ns_or(spec, vec![16, 25, 36, 49]);
    // The grid-side variants are side×side meshes and the bandwidth math
    // divides the fixed silicon budget by `n`, so every row of one `n`
    // must describe the same system size: only perfect squares (≥ 2×2)
    // compare apples to apples.
    if let Some(&bad) = ns.iter().find(|&&n| {
        let side = (n as f64).sqrt().round() as usize;
        side < 2 || side * side != n
    }) {
        return Err(StudyError::Spec(format!(
            "the kite stage compares square grids: axes.ns value {bad} is not a perfect \
             square >= 4"
        )));
    }
    let tech = Technology::organic_substrate();

    let mut jobs = Vec::new();
    for &n in &ns {
        for &variant in &KITE_VARIANTS {
            jobs.push((n, variant));
        }
    }
    let seeds = campaign.args().seeds.max(1);
    let expanded =
        expand_replicates(&jobs, seeds, campaign.args().campaign_seed, |&(n, variant)| {
            let variant_rank =
                KITE_VARIANTS.iter().position(|&v| v == variant).expect("listed variant");
            vec![n as u64, variant_rank as u64]
        });

    // This stage's historical default *is* the paper-scale schedule, so
    // --full coincides with the default and --quick shortens it.
    let schedule = match &spec.schedule {
        Some(over) => {
            let mut schedule = MeasureConfig::default();
            over.apply(&mut schedule);
            schedule
        }
        None if campaign.args().quick => MeasureConfig::quick(),
        None => MeasureConfig::default(),
    };
    let results = campaign.run_jobs(
        &expanded,
        |&((n, _), _)| n as u64,
        |&((n, variant), seed)| -> Result<KiteRow, StudyError> {
            let physical = build_kite_topology(n, variant)?;
            let mut opts = EvalOptions::paper_defaults(tech.clone());
            opts.pitch_mm = 1.0; // lengths already in mm
            opts.sim.seed = seed;
            opts.schedule = schedule;
            let result = evaluate(&physical, &opts)?;

            // §V bandwidth with the port-count tax:
            // A_B = (1 − p_p)·A_C / max_deg.
            let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
            let sector_area = (1.0 - UCIE_POWER_FRACTION) * chiplet_area
                / physical.max_degree().max(1) as f64;
            let link = estimate_link(&LinkParams::ucie_c4(sector_area)).expect("valid params");
            let full_global_tbps =
                n as f64 * opts.sim.endpoints_per_router as f64 * link.bandwidth_tbps();

            Ok(KiteRow {
                name: physical.name().to_owned(),
                links: physical.edges().len(),
                max_degree: physical.max_degree(),
                min_rate_gbps: result.min_rate_gbps,
                zero_load: result.zero_load_latency,
                sat_tbps: result.saturation.throughput * full_global_tbps,
            })
        },
    );
    let results: Vec<KiteRow> = results.into_iter().collect::<Result<_, _>>()?;

    let mut table = Table::new(&[
        "n",
        "topology",
        "links",
        "max_degree",
        "min_link_rate_gbps",
        "zero_load_latency_cycles",
        "saturation_tbps",
    ]);
    let mut summary = vec![
        "HexaMesh vs. length-aware grid topologies (substrate, 16 Gb/s nominal)".to_owned(),
    ];
    for ((n, _), chunk) in jobs.iter().zip(results.chunks(seeds as usize)) {
        let first = &chunk[0];
        let zero_load = mean_of(chunk, |r| r.zero_load);
        let sat_tbps = mean_of(chunk, |r| r.sat_tbps);
        summary.push(format!(
            "N={n:>3} {:<14} sat {sat_tbps:>7.2} Tb/s, lat {zero_load:>6.1} cyc",
            first.name
        ));
        table.row(&[
            n,
            &first.name,
            &first.links,
            &first.max_degree,
            &f3(first.min_rate_gbps),
            &f3(zero_load),
            &f3(sat_tbps),
        ]);
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

/// Builds the physical (mm-lengths) topology of one kite variant at `n`.
fn build_kite_topology(
    n: usize,
    variant: KiteVariant,
) -> Result<chiplet_topo::Topology, StudyError> {
    use chiplet_topo::express::ExpressOptions;
    use chiplet_topo::{express, ftorus, mesh, Topology};

    let side = (n as f64).sqrt().round() as usize;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let shape_params = ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION)?;
    let topo = match variant {
        KiteVariant::Mesh | KiteVariant::Ftorus | KiteVariant::Express => {
            let grid_shape = shape_for(ArrangementKind::Grid, &shape_params)?;
            let topo = match variant {
                KiteVariant::Mesh => mesh(side, side),
                KiteVariant::Ftorus => ftorus(side, side),
                _ => express(side, side, &ExpressOptions::default()).expect("express builds"),
            };
            with_mm_lengths(&topo, grid_shape.width, grid_shape.max_bump_distance)
        }
        KiteVariant::HexaMesh => {
            let hm = Arrangement::build(ArrangementKind::HexaMesh, n)?;
            let hm_shape = shape_for(ArrangementKind::HexaMesh, &shape_params)?;
            let hm_edges: Vec<(usize, usize, f64)> =
                hm.graph().edges().map(|(u, v)| (u, v, 1.0)).collect();
            let hm_topo = Topology::new(format!("hexamesh_{n}"), n, hm_edges)
                .expect("arrangement graphs are simple");
            with_mm_lengths(&hm_topo, hm_shape.width, hm_shape.max_bump_distance)
        }
    };
    Ok(topo)
}

/// Converts generator lengths (pitch units) to physical mm: an adjacent
/// link (1 pitch) spans bump sector to bump sector, `2·D_B`; each extra
/// pitch adds a full chiplet crossing.
fn with_mm_lengths(
    topo: &chiplet_topo::Topology,
    pitch_mm: f64,
    d_b_mm: f64,
) -> chiplet_topo::Topology {
    let edges: Vec<(usize, usize, f64)> = topo
        .edges()
        .iter()
        .map(|e| (e.u, e.v, 2.0 * d_b_mm + (e.length_pitch - 1.0) * pitch_mm))
        .collect();
    chiplet_topo::Topology::new(topo.name().to_owned(), topo.num_routers(), edges)
        .expect("lengths stay positive")
}

// ── resilience stage (structural metrics + graceful degradation) ────────

/// The legacy structural sweep: regular sizes plus irregular ones (where
/// the paper concedes weaker minimum degree).
const STRUCTURAL_RESILIENCE_NS: [usize; 8] = [16, 17, 36, 37, 41, 64, 91, 100];

/// Degradation-sweep chiplet counts: paper-adjacent sizes by default,
/// CI-sized under `--quick`.
fn degradation_ns(quick: bool) -> Vec<usize> {
    if quick {
        vec![7, 13]
    } else {
        vec![37, 91, 169]
    }
}

/// One degradation measurement: a network that loses `failures` random
/// links at `fault_cycle`, probed open-loop (degraded saturation) and
/// closed-loop (stencil / ring-all-reduce makespans with source
/// retransmission recovering the dropped packets).
struct DegradationPoint {
    connected: bool,
    saturation: f64,
    stencil_makespan: f64,
    allreduce_makespan: f64,
}

fn degradation_point(
    graph: &Graph,
    sim: SimConfig,
    schedule: &MeasureConfig,
    failures: usize,
    fault_cycle: u64,
    retransmit: nocsim::RetransmitConfig,
    seed: u64,
) -> Result<DegradationPoint, StudyError> {
    use nocsim::{FaultPlan, FaultSchedule, FaultTarget};

    let mut config = sim;
    config.seed = seed;
    let fault_schedule = FaultSchedule::random_links(graph, failures, fault_cycle, seed);

    // Survivor connectivity decides whether the closed-loop runs can
    // complete at all (the open-loop probe tolerates a partition — cut
    // sources squelch — but a workload spanning the cut never finishes).
    let killed: std::collections::HashSet<(usize, usize)> = fault_schedule
        .events()
        .iter()
        .map(|e| match e.target {
            FaultTarget::Link { a, b } => (a.min(b), a.max(b)),
            FaultTarget::Router(_) => unreachable!("random_links kills links only"),
        })
        .collect();
    let surviving: Vec<(usize, usize)> =
        graph.edges().filter(|&(u, v)| !killed.contains(&(u.min(v), u.max(v)))).collect();
    let degraded = Graph::from_edges(graph.num_vertices(), &surviving)
        .expect("removing edges keeps the graph simple");
    let connected = chiplet_graph::metrics::is_connected(&degraded);

    let plan = FaultPlan::new(fault_schedule.clone());
    let sat = noc_measure::saturation_search_faulted(graph, &config, schedule, &plan)?;

    let makespan = |kind: WorkloadKind| -> Result<f64, StudyError> {
        if !connected {
            return Ok(f64::NAN);
        }
        let endpoints = graph.num_vertices() * config.endpoints_per_router;
        let workload = kind.build(endpoints);
        let mut driver = WorkloadDriver::new(graph, config, &workload)?;
        driver.install_fault_plan(
            FaultPlan::new(fault_schedule.clone()).with_retransmit(retransmit),
        );
        let stats = driver.run(DEFAULT_MAX_CYCLES);
        Ok(if stats.completed { stats.makespan as f64 } else { f64::NAN })
    };
    Ok(DegradationPoint {
        connected,
        saturation: sat.throughput,
        stencil_makespan: makespan(WorkloadKind::Stencil)?,
        allreduce_makespan: makespan(WorkloadKind::RingAllReduce)?,
    })
}

fn resilience_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    use chiplet_graph::resilience::{articulation_points, bridges, edge_connectivity};

    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    let ns = ns_or(spec, STRUCTURAL_RESILIENCE_NS.to_vec());
    let k = campaign.args().seeds.max(1) as usize;

    // ── Structural table (byte-identical to the legacy binary) ──────────
    let scenario = Scenario::new(&kinds, &ns);
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let g = arrangement.graph();
        (
            arrangement.regularity().to_string(),
            arrangement.degree_stats().min,
            bridges(g).len(),
            articulation_points(g).len(),
            edge_connectivity(g).unwrap_or(0),
        )
    });
    let kind_rank =
        |kind: ArrangementKind| kinds.iter().position(|&q| q == kind).unwrap_or(usize::MAX);
    // Structural analyses have no randomness: replicates are identical,
    // keep one row per point. Historical row order is n-major.
    let mut rows: Vec<_> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            (job.n, job.kind, chunk[0].1.clone())
        })
        .collect();
    rows.sort_by_key(|&(n, kind, _)| (n, kind_rank(kind)));
    let mut structural = Table::new(&[
        "n",
        "kind",
        "regularity",
        "min_degree",
        "bridges",
        "articulation_points",
        "edge_connectivity",
    ]);
    for (n, kind, (regularity, min_deg, b, cuts, k_edge)) in &rows {
        structural.row(&[n, &kind.label(), regularity, min_deg, b, cuts, k_edge]);
    }

    // ── Degradation table (live link failures) ──────────────────────────
    // Default kinds include the honeycomb: the degradation story is about
    // all four families, while the structural table keeps the legacy
    // EVALUATED trio.
    let degrade_kinds = kinds_or(spec, &ArrangementKind::ALL);
    let fault_ns =
        spec.faults.ns.clone().unwrap_or_else(|| degradation_ns(campaign.args().quick));
    let failure_counts = spec.faults.link_failures.clone().unwrap_or_else(|| vec![0, 1, 2, 4]);
    let schedule = measure_for(spec, campaign.args());
    let fault_cycle = spec.faults.fault_cycle.unwrap_or(schedule.warmup_cycles / 2);
    let sim = base_sim(spec);
    let mut retransmit = nocsim::RetransmitConfig::default();
    if let Some(timeout) = spec.faults.retransmit_timeout {
        retransmit.timeout = timeout;
    }

    let mut jobs = Vec::new();
    for &n in &fault_ns {
        for &kind in &degrade_kinds {
            for &failures in &failure_counts {
                jobs.push((n, kind, failures));
            }
        }
    }
    let expanded = expand_replicates(
        &jobs,
        campaign.args().seeds,
        campaign.args().campaign_seed,
        |&(n, kind, failures)| vec![kind_code(kind), n as u64, failures as u64],
    );
    let points = campaign.run_jobs(
        &expanded,
        |&((n, _, _), _)| (n * n) as u64,
        |&((n, kind, failures), seed)| {
            let arrangement = Arrangement::build(kind, n)?;
            degradation_point(
                arrangement.graph(),
                sim,
                &schedule,
                failures,
                fault_cycle,
                retransmit,
                seed,
            )
        },
    );
    let points: Vec<DegradationPoint> = points.into_iter().collect::<Result<_, _>>()?;

    let mut degradation = Table::new(&[
        "n",
        "kind",
        "link_failures",
        "connected",
        "saturation_fraction",
        "stencil_makespan_cycles",
        "allreduce_makespan_cycles",
    ]);
    let mut summary = Vec::new();
    for (job, chunk) in jobs.iter().zip(points.chunks(k)) {
        let &(n, kind, failures) = job;
        let connected = chunk.iter().all(|p| p.connected);
        degradation.row(&[
            &n,
            &kind.label(),
            &failures,
            &usize::from(connected),
            &f3(mean_of(chunk, |p| p.saturation)),
            &f3(mean_of(chunk, |p| p.stencil_makespan)),
            &f3(mean_of(chunk, |p| p.allreduce_makespan)),
        ]);
    }
    // Headline: how much saturation headroom each family keeps at the
    // heaviest failure count probed.
    let worst = *failure_counts.iter().max().expect("validated non-empty");
    for &n in &fault_ns {
        for &kind in &degrade_kinds {
            let at = |f: usize| {
                jobs.iter()
                    .position(|&j| j == (n, kind, f))
                    .map(|i| mean_of(&points[i * k..(i + 1) * k], |p| p.saturation))
            };
            if let (Some(healthy), Some(degraded)) = (at(0), at(worst)) {
                if healthy > 0.0 {
                    summary.push(format!(
                        "{} n={n}: saturation {healthy:.3} -> {degraded:.3} after {worst} \
                         link failures ({:.0}% retained)",
                        kind.label(),
                        100.0 * degraded / healthy,
                    ));
                }
            }
        }
    }
    Ok(StageOutput {
        tables: vec![
            StageTable::main(structural),
            StageTable { stem: Some("BENCH_resilience".to_owned()), table: degradation },
        ],
        summary,
    })
}

// ── router stage (microarchitecture fidelity re-ranking) ────────────────

fn router_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    let kinds = kinds_or(spec, &ArrangementKind::ALL);
    let ns = ns_or(spec, if campaign.args().quick { vec![7, 13] } else { vec![37, 91, 169] });
    let routers = spec.axes.routers.clone().unwrap_or_else(|| RouterModelKind::ALL.to_vec());
    // The makespan half is opt-in: with `axes.workloads` set, every
    // (router, n, kind) point also runs those kernels closed-loop and
    // the table gains per-kernel makespan + rank columns.
    let workloads = spec.axes.workloads.clone().unwrap_or_default();
    let schedule = measure_for(spec, campaign.args());
    let sim = base_sim(spec);

    eprintln!(
        "{}: {} router models x {} kinds x {} chiplet counts ({} workloads) on {} workers",
        campaign.name(),
        routers.len(),
        kinds.len(),
        ns.len(),
        workloads.len(),
        campaign.args().workers,
    );

    let scenario = Scenario::new(&kinds, &ns).with_routers(&routers);
    let results = campaign.run_grid_budgeted(&scenario, schedule.shards, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let graph = arrangement.graph();
        let mut config = sim;
        config.router = job.router.expect("router axis set").model();
        config.seed = job.seed;
        let zero_load =
            noc_measure::zero_load_latency(graph, &config).expect("connected graph");
        let sat = noc_measure::saturation_search(graph, &config, &schedule)
            .expect("valid configuration");
        // Closed-loop kernels under the same model and seed; a stalled
        // run reads as NaN (ranked last by total_cmp), not an abort.
        let makespans: Vec<f64> = workloads
            .iter()
            .map(|&w| {
                let endpoints = job.n * config.endpoints_per_router;
                let workload = w.build(endpoints);
                let mut driver =
                    WorkloadDriver::new(graph, config, &workload).expect("valid driver");
                let stats = driver.run(DEFAULT_MAX_CYCLES);
                if stats.completed {
                    stats.makespan as f64
                } else {
                    f64::NAN
                }
            })
            .collect();
        (zero_load, sat.throughput, makespans)
    });

    struct Row {
        router: RouterModelKind,
        n: usize,
        kind: ArrangementKind,
        zero_load: f64,
        saturation: f64,
        makespans: Vec<f64>,
    }
    let k = campaign.args().seeds.max(1) as usize;
    let mut rows: Vec<Row> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            Row {
                router: job.router.expect("router axis set"),
                n: job.n,
                kind: job.kind,
                zero_load: mean_of(chunk, |(_, (z, _, _))| *z),
                saturation: mean_of(chunk, |(_, (_, s, _))| *s),
                makespans: (0..workloads.len())
                    .map(|i| mean_of(chunk, |(_, (_, _, m))| m[i]))
                    .collect(),
            }
        })
        .collect();

    // The grid expands kind-outermost; the table reads router-major
    // (router → n → kind), one ranking group per (router, n).
    let router_rank =
        |r: RouterModelKind| routers.iter().position(|&q| q == r).unwrap_or(usize::MAX);
    let kind_rank =
        |kind: ArrangementKind| kinds.iter().position(|&q| q == kind).unwrap_or(usize::MAX);
    rows.sort_by_key(|r| (router_rank(r.router), r.n, kind_rank(r.kind)));

    let mut columns: Vec<String> = ["router", "n", "kind", "zero_load_latency_cycles"]
        .iter()
        .map(|&c| c.to_owned())
        .collect();
    columns.push("saturation_fraction".to_owned());
    columns.push("sat_rank".to_owned());
    for w in &workloads {
        columns.push(format!("{}_makespan_cycles", w.label()));
        columns.push(format!("{}_rank", w.label()));
    }
    let header: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(&header);

    let mut summary = Vec::new();
    // Per-(router, n) saturation rank vectors, kept in `kinds` order for
    // the fidelity comparison below (rank vectors are tie-exact where a
    // sorted kind order would not be).
    let mut rank_vectors: Vec<(RouterModelKind, usize, Vec<usize>)> = Vec::new();
    for group in rows.chunks(kinds.len()) {
        // Saturation: higher is better, so rank the negated series.
        // Makespans rank directly (lower is better).
        let sats: Vec<f64> = group.iter().map(|r| -r.saturation).collect();
        let sat_rank = sweep::competition_rank(&sats);
        let makespan_ranks: Vec<Vec<usize>> = (0..workloads.len())
            .map(|i| {
                let series: Vec<f64> = group.iter().map(|r| r.makespans[i]).collect();
                sweep::competition_rank(&series)
            })
            .collect();
        for (i, row) in group.iter().enumerate() {
            let mut cells: Vec<String> = vec![
                row.router.name().to_owned(),
                row.n.to_string(),
                row.kind.label().to_owned(),
                f3(row.zero_load),
                f3(row.saturation),
                sat_rank[i].to_string(),
            ];
            for (w, ranks) in row.makespans.iter().zip(&makespan_ranks) {
                cells.push(f3(*w));
                cells.push(ranks[i].to_string());
            }
            let rendered: Vec<&dyn fmt::Display> =
                cells.iter().map(|c| c as &dyn fmt::Display).collect();
            table.row(&rendered);
        }
        let best = sat_rank.iter().position(|&r| r == 1).expect("non-empty group");
        summary.push(format!(
            "{:<11} n={:<4} best saturation {} ({:.3})",
            group[0].router.name(),
            group[0].n,
            group[best].kind.label(),
            group[best].saturation,
        ));
        rank_vectors.push((group[0].router, group[0].n, sat_rank));
    }

    // The fidelity headline: does raising router fidelity re-rank the
    // arrangements, or is the comparison robust to the microarchitecture?
    if let Some(&reference) = routers.first() {
        let rank_of = |router: RouterModelKind, n: usize| {
            rank_vectors.iter().find(|&&(r, m, _)| r == router && m == n).map(|(_, _, v)| v)
        };
        let mut reordered = Vec::new();
        for &n in &ns {
            let base = rank_of(reference, n);
            for &router in routers.iter().skip(1) {
                if rank_of(router, n) != base {
                    reordered.push(format!("{} at n={n}", router.name()));
                }
            }
        }
        summary.push(if reordered.is_empty() {
            format!(
                "saturation ranking matches the {} model under all {} router models",
                reference.name(),
                routers.len(),
            )
        } else {
            format!(
                "models re-ranking the {} saturation order: {}",
                reference.name(),
                reordered.join(", "),
            )
        });
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

// ── thermal stage ───────────────────────────────────────────────────────

/// Areal power density of compute silicon, W/mm² (200 W per 800 mm²).
const COMPUTE_DENSITY_W_PER_MM2: f64 = 0.25;
/// I/O chiplets dissipate a third of the compute density.
const IO_DENSITY_RATIO: f64 = 1.0 / 3.0;

fn thermal_stage(spec: &StudySpec, campaign: &Campaign) -> Result<StageOutput, StudyError> {
    use chiplet_layout::ChipletKind;
    use chiplet_thermal::{solve, HotspotReport, PowerMap, ThermalParams};

    let kinds = kinds_or(spec, &ArrangementKind::EVALUATED);
    if kinds.contains(&ArrangementKind::Honeycomb) {
        return Err(StudyError::Spec(
            "the thermal stage needs rectangular placements; the honeycomb has none \
             (its graph twin is the brickwall)"
                .to_owned(),
        ));
    }
    let ns = ns_or(spec, vec![16, 37, 64]);

    let mut jobs = Vec::new();
    for &n in &ns {
        for &kind in &kinds {
            jobs.push((n, kind));
        }
    }
    let results = campaign.run_jobs(
        &jobs,
        |&(n, _)| n as u64,
        |&(n, kind)| -> Result<(f64, HotspotReport), StudyError> {
            let arrangement = Arrangement::build(kind, n)?;
            let placement = arrangement
                .placement()
                .ok_or_else(|| StudyError::Spec(format!("{kind} has no placement")))?;
            // Area-preserving lattice scale: one layout unit² maps to
            // chiplet_area / units_per_chiplet mm².
            let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
            let first = placement.chiplets().first().expect("non-empty placement");
            let unit_area = (first.rect.width() * first.rect.height()) as f64;
            let mm_per_unit = (chiplet_area / unit_area).sqrt();

            let map = PowerMap::from_placement(placement, mm_per_unit, 0.5, 4, |c| {
                let area_mm2 =
                    (c.rect.width() * c.rect.height()) as f64 * mm_per_unit * mm_per_unit;
                let density = match c.kind {
                    ChipletKind::Compute => COMPUTE_DENSITY_W_PER_MM2,
                    ChipletKind::Io => COMPUTE_DENSITY_W_PER_MM2 * IO_DENSITY_RATIO,
                };
                area_mm2 * density
            })?;
            let total_power = map.total_w();
            let solution = solve(&map, &ThermalParams::default())?;
            Ok((total_power, HotspotReport::from_solution(&solution)))
        },
    );

    let mut table = Table::new(&[
        "n",
        "kind",
        "total_power_w",
        "peak_c",
        "avg_c",
        "gradient_c",
        "hotspot_fraction",
    ]);
    let mut summary = vec![format!(
        "steady-state thermal comparison at {COMPUTE_DENSITY_W_PER_MM2} W/mm² compute density"
    )];
    for ((n, kind), result) in jobs.iter().zip(results) {
        let (total_power, report) = result?;
        summary.push(format!(
            "N={n:>3} {:<4} peak {:.1} °C, gradient {:.2} K",
            kind.label(),
            report.peak_c,
            report.gradient_c
        ));
        table.row(&[
            n,
            &kind.label(),
            &f3(total_power),
            &f3(report.peak_c),
            &f3(report.average_c),
            &f3(report.gradient_c),
            &f3(report.hotspot_fraction),
        ]);
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

// ── cost stage ──────────────────────────────────────────────────────────

/// Total-silicon-area sweep of the cost stage, mm².
const COST_AREAS_MM2: [f64; 6] = [50.0, 100.0, 200.0, 400.0, 600.0, 800.0];

fn cost_stage(spec: &StudySpec, _campaign: &Campaign) -> Result<StageOutput, StudyError> {
    use chiplet_cost::system::{best_chiplet_count, system_cost_comparison, CostParams};

    let ns = ns_or(spec, vec![2, 4, 8, 16, 25, 36, 49, 64, 100]);
    let params = CostParams::default_5nm();
    let mut table = Table::new(&[
        "total_area_mm2",
        "num_chiplets",
        "monolithic_cost",
        "mcm_cost",
        "monolithic_over_mcm",
        "monolithic_yield",
        "chiplet_yield",
        "assembly_yield",
    ]);
    for &area in &COST_AREAS_MM2 {
        for &n in &ns {
            let Ok(cmp) = system_cost_comparison(&params, area, n) else {
                continue; // tiny chiplets may round below wafer feasibility
            };
            table.row(&[
                &f3(area),
                &n,
                &f3(cmp.monolithic_total),
                &f3(cmp.mcm_total),
                &f3(cmp.monolithic_over_mcm()),
                &f3(cmp.monolithic_yield),
                &f3(cmp.chiplet_yield),
                &f3(cmp.assembly_yield),
            ]);
        }
    }
    let mut summary = Vec::new();
    // The sweet spot at the paper's 800 mm² design point.
    let counts: Vec<usize> = (1..=128).collect();
    if let Some((best_n, best_cost)) = best_chiplet_count(&params, 800.0, &counts) {
        summary.push(format!(
            "optimal chiplet count at 800 mm²: N = {best_n} (MCM cost ${best_cost:.0})"
        ));
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::OutputFormat;

    fn args(dir: &std::path::Path, workers: usize) -> CampaignArgs {
        CampaignArgs {
            workers,
            seeds: 1,
            quick: true,
            full: false,
            out: dir.to_path_buf(),
            format: OutputFormat::Csv,
            campaign_seed: 7,
            progress: false,
        }
    }

    #[test]
    fn spec_defaults_apply_only_when_flags_are_absent() {
        let mut spec = StudySpec::new("s", StageKind::Proxies);
        spec.seed = Some(99);
        spec.replicates = Some(3);
        spec.output.to_repo_root = true;
        let argv: Vec<String> = ["bin"].iter().map(|s| (*s).to_string()).collect();
        let resolved = campaign_args_for(&spec, &argv).unwrap();
        assert_eq!(resolved.campaign_seed, 99);
        assert_eq!(resolved.seeds, 3);
        assert_eq!(resolved.out, std::path::PathBuf::from("."));
        let argv: Vec<String> = ["bin", "--seed", "1", "--seeds", "2", "--out", "elsewhere"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let resolved = campaign_args_for(&spec, &argv).unwrap();
        assert_eq!(resolved.campaign_seed, 1);
        assert_eq!(resolved.seeds, 2);
        assert_eq!(resolved.out, std::path::PathBuf::from("elsewhere"));
    }

    #[test]
    fn search_stage_without_hook_is_a_spec_error() {
        let spec = StudySpec::new("s", StageKind::Search);
        let dir = std::env::temp_dir().join("xp_flow_hookless");
        let err = run_study(&spec, args(&dir, 1), &StageHooks::default()).unwrap_err();
        assert!(matches!(err, StudyError::Spec(_)), "got {err}");
    }

    #[test]
    fn optimized_axis_without_hook_is_a_spec_error() {
        let mut spec = StudySpec::new("s", StageKind::LoadCurve);
        spec.axes.optimized = true;
        spec.axes.ns = Some(vec![4]);
        let dir = std::env::temp_dir().join("xp_flow_optless");
        let err = run_study(&spec, args(&dir, 1), &StageHooks::default()).unwrap_err();
        assert!(matches!(err, StudyError::Spec(_)), "got {err}");
    }

    #[test]
    fn kite_stage_rejects_non_square_counts() {
        let dir = std::env::temp_dir().join("xp_flow_kite_ns");
        for bad in [2usize, 20] {
            let mut spec = StudySpec::new("s", StageKind::Kite);
            spec.axes.ns = Some(vec![bad]);
            let err = run_study(&spec, args(&dir, 1), &StageHooks::default()).unwrap_err();
            assert!(matches!(err, StudyError::Spec(_)), "ns={bad} must be rejected, got {err}");
        }
    }

    #[test]
    fn proxies_study_runs_end_to_end() {
        let dir = std::env::temp_dir().join("xp_flow_proxies");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = StudySpec::new("proxy_unit", StageKind::Proxies);
        spec.axes.ns = Some(vec![7, 16]);
        let report = run_study(&spec, args(&dir, 2), &StageHooks::default()).unwrap();
        assert_eq!(report.written.len(), 1);
        let csv = std::fs::read_to_string(&report.written[0]).unwrap();
        assert!(csv.starts_with("kind,regularity,n,diameter,bisection\n"));
        assert_eq!(csv.lines().count(), 1 + 2 * 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_load_curve_emits_artefacts_without_changing_rows() {
        let dir = std::env::temp_dir().join("xp_flow_observe");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = StudySpec::new("curve_unit", StageKind::LoadCurve);
        spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh, ArrangementKind::Grid]);
        spec.axes.ns = Some(vec![7]);
        spec.axes.rates = Some(vec![0.1]);
        spec.schedule = Some(crate::spec::Schedule::new(300, 600));
        let plain =
            run_study(&spec, args(&dir.join("plain"), 2), &StageHooks::default()).unwrap();

        spec.observe.sample_every = Some(150);
        spec.observe.timeline = true;
        spec.observe.heatmap = true;
        spec.observe.trace = true;
        let watched_dir = dir.join("watched");
        let watched = run_study(&spec, args(&watched_dir, 2), &StageHooks::default()).unwrap();

        // Zero perturbation: observing never changes the result rows.
        assert_eq!(
            std::fs::read_to_string(&plain.written[0]).unwrap(),
            std::fs::read_to_string(&watched.written[0]).unwrap()
        );

        // Timeline: (300 + 600) / 150 = 6 windows per job, 2 jobs.
        let timeline = std::fs::read_to_string(watched_dir.join("timeline.csv")).unwrap();
        assert!(timeline.starts_with("kind,n,pattern,offered_flits_per_cycle,replicate,"));
        assert_eq!(timeline.lines().count(), 1 + 2 * 6, "{timeline}");
        assert!(timeline.contains("\nHM,7,"), "{timeline}");

        // Heatmaps: one SVG per (kind, rate) at replicate 0.
        for name in ["heatmap_hexamesh_n7_r100_uniform.svg", "heatmap_grid_n7_r100_uniform.svg"]
        {
            let svg = std::fs::read_to_string(watched_dir.join(name)).unwrap();
            assert!(svg.starts_with("<svg"), "{name}: {svg}");
            assert!(svg.contains("stroke=\"#"), "{name} draws heat edges");
        }

        // Trace: a Perfetto-loadable document with one span per job.
        let trace = std::fs::read_to_string(watched_dir.join("trace.json")).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"load_curve\""), "stage span present: {trace}");
        assert!(trace.contains("HexaMesh n=7"), "{trace}");
        assert!(watched.written.iter().any(|p| p.ends_with("trace.json")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn router_study_ranks_models_and_is_worker_count_invariant() {
        let dir = std::env::temp_dir().join("xp_flow_router");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = StudySpec::new("router_unit", StageKind::Router);
        spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh, ArrangementKind::Grid]);
        spec.axes.ns = Some(vec![4]);
        spec.axes.routers = Some(vec![RouterModelKind::Baseline, RouterModelKind::Fortified]);
        spec.axes.workloads = Some(vec![WorkloadKind::Stencil]);
        spec.schedule = Some(crate::spec::Schedule::new(300, 600));
        let serial =
            run_study(&spec, args(&dir.join("w1"), 1), &StageHooks::default()).unwrap();
        let parallel =
            run_study(&spec, args(&dir.join("w8"), 8), &StageHooks::default()).unwrap();
        let csv = std::fs::read_to_string(&serial.written[0]).unwrap();
        assert_eq!(csv, std::fs::read_to_string(&parallel.written[0]).unwrap());
        assert!(
            csv.starts_with(
                "router,n,kind,zero_load_latency_cycles,saturation_fraction,sat_rank,\
                 stencil_makespan_cycles,stencil_rank\n"
            ),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 1 + 2 * 2, "{csv}");
        assert!(csv.contains("\nfortified,4,"), "{csv}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_study_is_worker_count_invariant() {
        let dir = std::env::temp_dir().join("xp_flow_traffic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = StudySpec::new("traffic_unit", StageKind::Traffic);
        spec.axes.ns = Some(vec![4]);
        spec.axes.patterns = Some(vec![TrafficPattern::UniformRandom]);
        spec.schedule = Some(crate::spec::Schedule::new(300, 600));
        let serial =
            run_study(&spec, args(&dir.join("w1"), 1), &StageHooks::default()).unwrap();
        let parallel =
            run_study(&spec, args(&dir.join("w8"), 8), &StageHooks::default()).unwrap();
        assert_eq!(
            std::fs::read_to_string(&serial.written[0]).unwrap(),
            std::fs::read_to_string(&parallel.written[0]).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
