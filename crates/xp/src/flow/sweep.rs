//! Sweep runners shared by the study stages and the figure binaries —
//! the engine-pool decompositions of the paper's evaluation pipeline.
//!
//! These helpers lived in `hexamesh_bench::sweep` while every experiment
//! was a hand-wired binary; the study flow ([`crate::flow`]) runs the
//! same sweeps from declarative specs, so they moved down into the
//! engine. `hexamesh_bench::sweep` re-exports them under the historical
//! names.

use chiplet_partition::BisectionConfig;
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::eval::{self, EvalParams, EvalResult};
use hexamesh::proxies;
use nocsim::measure::SaturationResult;
use nocsim::{MeasureConfig, TrafficPattern};

use crate::cli::CampaignArgs;
use crate::grid::{Job, Scenario};
use crate::stats::mean_of;
use crate::{pool, Campaign};

/// Competition ranking ("1224"): ranks `values` ascending — lower is
/// better — with exact ties sharing the better rank. Ties are routine,
/// not hypothetical: brickwall and honeycomb realise the same graph, so
/// the comparison stages share this one implementation to keep tie
/// handling uniform.
#[must_use]
pub fn competition_rank(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut rank = vec![0usize; values.len()];
    for (place, &idx) in order.iter().enumerate() {
        let tied = place > 0 && values[order[place - 1]] == values[idx];
        rank[idx] = if tied { rank[order[place - 1]] } else { place + 1 };
    }
    rank
}

/// Position of `kind` in [`ArrangementKind::EVALUATED`] — the row order
/// the historical tables use when restoring ordering after a grid
/// expansion.
#[must_use]
pub fn evaluated_rank(kind: ArrangementKind) -> usize {
    ArrangementKind::EVALUATED.iter().position(|&e| e == kind).unwrap_or(usize::MAX)
}

/// The measurement schedule selected by the shared flags: `--quick`
/// (short windows, coarse resolution), `--full` (the paper-scale
/// [`MeasureConfig::default`] schedule), or — when neither is given —
/// the middle-ground windows the simulation binaries have always used.
#[must_use]
pub fn schedule_for(args: &CampaignArgs) -> MeasureConfig {
    if args.quick {
        MeasureConfig::quick()
    } else if args.full {
        MeasureConfig::default()
    } else {
        let mut schedule = MeasureConfig::default();
        schedule.warmup_cycles = 3_000;
        schedule.measure_cycles = 6_000;
        schedule
    }
}

/// One row of the Fig. 6 proxy sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyPoint {
    /// Arrangement family.
    pub kind: ArrangementKind,
    /// Regularity used at this `n`.
    pub regularity: hexamesh::Regularity,
    /// Chiplet count.
    pub n: usize,
    /// Diameter measured on the constructed graph.
    pub diameter: u32,
    /// Bisection bandwidth following the paper's methodology (formula for
    /// regular, partitioner otherwise).
    pub bisection: f64,
}

/// Computes the Fig. 6 proxies for all chiplet counts in `ns`, for every
/// kind in `kinds` (n-major, kinds inner — the figure's row order).
#[must_use]
pub fn proxy_sweep_over(kinds: &[ArrangementKind], ns: &[usize]) -> Vec<ProxyPoint> {
    let config = BisectionConfig::default();
    let mut out = Vec::new();
    for &n in ns {
        for &kind in kinds {
            let a = Arrangement::build(kind, n).expect("n >= 1 always builds");
            out.push(ProxyPoint {
                kind,
                regularity: a.regularity(),
                n,
                diameter: proxies::measured_diameter(&a).expect("connected"),
                bisection: proxies::paper_bisection(&a, &config),
            });
        }
    }
    out
}

/// [`proxy_sweep_over`] for the three §VI-evaluated kinds (the historical
/// signature).
#[must_use]
pub fn proxy_sweep(ns: &[usize]) -> Vec<ProxyPoint> {
    proxy_sweep_over(&ArrangementKind::EVALUATED, ns)
}

/// Runs the full Fig. 7 evaluation for all counts in `ns` across the three
/// evaluated kinds, spreading work over `workers` threads via the engine
/// pool (largest `n` first). Results are returned sorted by `(kind, n)`
/// and are identical for every `workers` value.
///
/// # Panics
///
/// Panics if any single evaluation fails — every `n ≥ 1` arrangement is
/// connected and the paper configuration is valid, so a failure is a bug.
#[must_use]
pub fn evaluation_sweep(ns: &[usize], params: &EvalParams, workers: usize) -> Vec<EvalResult> {
    let mut jobs: Vec<(ArrangementKind, usize)> = Vec::new();
    for &n in ns {
        for kind in ArrangementKind::EVALUATED {
            jobs.push((kind, n));
        }
    }
    let mut results = pool::run_jobs(
        &jobs,
        workers,
        |&(_, n)| n as u64,
        |&(kind, n)| {
            let arrangement = Arrangement::build(kind, n).expect("n >= 1 builds");
            eval::evaluate(&arrangement, params)
                .unwrap_or_else(|e| panic!("evaluate {kind} n={n}: {e}"))
        },
        None,
    );
    results.sort_by_key(|r| (r.kind.label(), r.n));
    results
}

/// The replicated form of [`evaluation_sweep`] a campaign runs:
/// `--seeds K` replicates per `(kind, n)` with engine-derived seeds,
/// aggregated to mean values in the same [`EvalResult`] shape, for an
/// arbitrary kind set and traffic pattern. With `K = 1`, default kinds,
/// and uniform traffic the only difference from [`evaluation_sweep`] is
/// that the simulator seed comes from the campaign seed derivation
/// instead of `params.sim.seed`.
///
/// `pattern` rides through the scenario's pattern axis, so a non-uniform
/// pattern also changes the derived seeds — exactly like any other
/// coordinate — while the uniform default leaves the historical seeds
/// unmoved.
///
/// `fanout > 1` additionally spreads each arrangement's saturation search
/// over `fanout` rate points per round ([`evaluate_pooled`]) — worthwhile
/// when the grid has fewer jobs than workers. The fanout changes the probe
/// sequence, so it must come from an explicit flag or spec field (never
/// from `--workers`) to keep rows independent of the worker count.
///
/// # Panics
///
/// As [`evaluation_sweep`].
#[must_use]
pub fn evaluation_campaign_over(
    kinds: &[ArrangementKind],
    ns: &[usize],
    pattern: TrafficPattern,
    params: &EvalParams,
    campaign: &Campaign,
    fanout: usize,
) -> Vec<EvalResult> {
    let scenario = Scenario::new(kinds, ns).with_patterns(&[pattern]);
    // Keep the thread total bounded by the worker budget: the nested
    // rate-point pool only gets the workers the grid leaves idle, and
    // sharded simulations charge their shard threads to the same budget.
    // (The probe *sequence* depends only on `fanout`, so this split never
    // changes results.)
    let k = campaign.args().seeds.max(1) as usize;
    let total_jobs = (kinds.len() * ns.len() * k).max(1);
    let inner_workers = (campaign.args().workers / total_jobs).max(1);
    let results = campaign.run_grid_budgeted(&scenario, params.measure.shards, |job: &Job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("n >= 1 builds");
        let mut p = *params;
        p.sim.seed = job.seed;
        p.sim.pattern = job.pattern;
        if fanout > 1 {
            evaluate_pooled(&arrangement, &p, fanout, inner_workers)
        } else {
            eval::evaluate(&arrangement, &p)
                .unwrap_or_else(|e| panic!("evaluate {} n={}: {e}", job.kind, job.n))
        }
    });

    // Aggregate replicates: grid order guarantees replicates of one point
    // are adjacent, so chunking by K keeps this deterministic.
    let mut aggregated: Vec<EvalResult> = results
        .chunks(k)
        .map(|chunk| {
            let field = |f: fn(&EvalResult) -> f64| mean_of(chunk, |(_, r)| f(r));
            let first = chunk[0].1;
            EvalResult {
                zero_load_latency_cycles: field(|r| r.zero_load_latency_cycles),
                saturation_fraction: field(|r| r.saturation_fraction),
                saturation_throughput_tbps: field(|r| r.saturation_throughput_tbps),
                ..first
            }
        })
        .collect();
    aggregated.sort_by_key(|r| (r.kind.label(), r.n));
    aggregated
}

/// [`evaluation_campaign_over`] for the three evaluated kinds under
/// uniform traffic (the historical signature `fig7_simulation` used).
#[must_use]
pub fn evaluation_campaign(
    ns: &[usize],
    params: &EvalParams,
    campaign: &Campaign,
    fanout: usize,
) -> Vec<EvalResult> {
    evaluation_campaign_over(
        &ArrangementKind::EVALUATED,
        ns,
        TrafficPattern::UniformRandom,
        params,
        campaign,
        fanout,
    )
}

/// Saturation search for a single arrangement with the rate points of each
/// round spread over `workers` threads — the engine-job decomposition of
/// [`hexamesh::eval::saturation_search_with`]. Use this when a study
/// evaluates too few arrangements to keep the pool busy; results are
/// independent of `workers` (only the probe fanout changes the probe
/// sequence, and it is fixed by the caller).
///
/// # Panics
///
/// Panics if a simulation point fails (connected arrangements with valid
/// parameters never do).
#[must_use]
pub fn saturation_search_pooled(
    arrangement: &Arrangement,
    params: &EvalParams,
    fanout: usize,
    workers: usize,
) -> SaturationResult {
    let zero_load = eval::zero_load_of(arrangement, params).expect("connected arrangement");
    eval::saturation_search_with(params, fanout.max(1), |rates| {
        Ok(run_rates_pooled(arrangement, params, zero_load, rates, workers))
    })
    .expect("runner never errors")
}

/// Full [`eval::evaluate`] with the saturation search's rate points spread
/// over `workers` threads — [`saturation_search_pooled`] wrapped in the
/// link-budget/zero-load pipeline. Used by the saturation stage's
/// `fanout` spec field (`fig7_simulation --fanout F`).
///
/// # Panics
///
/// As [`saturation_search_pooled`].
#[must_use]
pub fn evaluate_pooled(
    arrangement: &Arrangement,
    params: &EvalParams,
    fanout: usize,
    workers: usize,
) -> EvalResult {
    eval::evaluate_with(arrangement, params, fanout.max(1), |zero_load, rates| {
        Ok(run_rates_pooled(arrangement, params, zero_load, rates, workers))
    })
    .unwrap_or_else(|e| panic!("evaluate n={}: {e}", arrangement.num_chiplets()))
}

/// Simulates a batch of independent rate points on the engine pool.
fn run_rates_pooled(
    arrangement: &Arrangement,
    params: &EvalParams,
    zero_load: f64,
    rates: &[f64],
    workers: usize,
) -> Vec<nocsim::measure::LoadPointResult> {
    pool::run_jobs(
        rates,
        workers,
        |_| 1,
        |&rate| {
            eval::measure_load_point(arrangement, params, rate, zero_load)
                .unwrap_or_else(|e| panic!("load point at rate {rate}: {e}"))
        },
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_sweep_covers_all_kinds() {
        let points = proxy_sweep(&[7, 16]);
        assert_eq!(points.len(), 6);
        // HexaMesh at n=7 is regular with diameter 2 and bisection 5.
        let hm7 =
            points.iter().find(|p| p.kind == ArrangementKind::HexaMesh && p.n == 7).unwrap();
        assert_eq!(hm7.diameter, 2);
        assert_eq!(hm7.bisection, 5.0);
    }

    #[test]
    fn competition_rank_shares_tied_ranks() {
        assert_eq!(competition_rank(&[3.0, 1.0, 2.0]), vec![3, 1, 2]);
        // "1224": both middle values share rank 2, the next rank is 4.
        assert_eq!(competition_rank(&[1.0, 2.0, 2.0, 5.0]), vec![1, 2, 2, 4]);
        assert_eq!(competition_rank(&[]), Vec::<usize>::new());
    }

    fn tiny_params() -> EvalParams {
        let mut params = EvalParams::quick();
        params.sim.vcs = 4;
        params.sim.buffer_depth = 4;
        params.measure.warmup_cycles = 500;
        params.measure.measure_cycles = 1_000;
        params.measure.rate_resolution = 0.1;
        params
    }

    #[test]
    fn evaluation_sweep_tiny() {
        let results = evaluation_sweep(&[4], &tiny_params(), 2);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.saturation_fraction > 0.0));
    }

    #[test]
    fn evaluation_sweep_worker_count_is_invisible() {
        let params = tiny_params();
        let serial = evaluation_sweep(&[2, 4], &params, 1);
        let parallel = evaluation_sweep(&[2, 4], &params, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pooled_saturation_search_matches_serial_at_fanout_one() {
        let params = tiny_params();
        let a = Arrangement::build(ArrangementKind::Grid, 4).unwrap();
        let serial =
            nocsim::measure::saturation_search(a.graph(), &params.sim, &params.measure)
                .unwrap();
        let pooled = saturation_search_pooled(&a, &params, 1, 4);
        assert_eq!(serial, pooled, "fanout-1 batched search must equal bisection");
        // Wider fanout probes different rates but must land near the same
        // knee.
        let wide = saturation_search_pooled(&a, &params, 4, 4);
        assert!((wide.rate - serial.rate).abs() <= 2.0 * params.measure.rate_resolution);
    }
}
