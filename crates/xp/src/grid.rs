//! Declarative experiment grids.
//!
//! A [`Scenario`] is the cartesian product the paper's figures sweep:
//! arrangement kind × chiplet count × injection rate × traffic pattern ×
//! workload × router model × replicate seed. [`Scenario::jobs`] expands it into [`Job`]s
//! whose seeds come from [`crate::seed::derive_seed`] over the job's
//! *coordinates*, so the expansion is independent of axis ordering,
//! worker count, and the presence of other axis values.
//!
//! # Axis evolution rule
//!
//! The seed coordinate layout is a compatibility contract. The first
//! grid shipped five words — `[kind, n, rate bits, pattern, replicate]`
//! — and every result ever produced is keyed on seeds derived from them,
//! so growing the grid must never re-derive them. The rule, introduced
//! when the workload axis landed (PR 3) and binding for **every** future
//! axis:
//!
//! 1. a new axis is *optional*: its neutral value (`None`) contributes
//!    one grid point and **no** coordinate word;
//! 2. when the axis is used, its word is appended **between the pattern
//!    word and the replicate word**, after any earlier optional axes'
//!    words (insertion order = the order the axes were added to the
//!    engine, never alphabetical or struct order);
//! 3. existing coordinate codes ([`kind_code`], [`pattern_code`],
//!    `WorkloadKind::code`) are append-only — a code, once shipped, is
//!    never renumbered or reused.
//!
//! Consequence, pinned by `optional_axis_rule_keeps_unused_seeds_fixed`
//! below: a scenario that leaves every optional axis at its neutral
//! value derives exactly the historical five-word seeds, whatever
//! optional axes the engine has since grown.
//!
//! Two optional axes exist today, in insertion order: the **workload**
//! axis (PR 3) and the **router-model** axis. A used router coordinate
//! ([`nocsim::RouterModelKind::code`], append-only like every other
//! code) is therefore appended *after* the workload word (when that is
//! used) and immediately before the replicate word; a scenario on the
//! default router model appends nothing and keeps its historical seeds.

use chiplet_workload::WorkloadKind;
use hexamesh::arrangement::ArrangementKind;
use nocsim::{RouterModelKind, TrafficPattern};

use crate::seed::derive_seed;

/// A declarative sweep: the cartesian product of the seven axes.
///
/// Axes left at their defaults contribute a single neutral point, so a
/// scenario only names the dimensions it actually sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Arrangement families to evaluate.
    pub kinds: Vec<ArrangementKind>,
    /// Chiplet counts.
    pub ns: Vec<usize>,
    /// Injection rates (flits/cycle/endpoint); `None` marks a job whose
    /// runner chooses the rate itself (e.g. a saturation search).
    pub rates: Vec<Option<f64>>,
    /// Spatial traffic patterns.
    pub patterns: Vec<TrafficPattern>,
    /// Closed-loop application workloads; `None` marks an open-loop
    /// (pattern-driven) job. A `None` job's seed coordinates are exactly
    /// the pre-workload five words, so adding this axis moved no
    /// existing point's seed.
    pub workloads: Vec<Option<WorkloadKind>>,
    /// Router microarchitectures; `None` marks a job on the default
    /// (paper) router. Like the workload axis, a `None` job contributes
    /// no coordinate word, so adding this axis moved no existing
    /// point's seed.
    pub routers: Vec<Option<RouterModelKind>>,
    /// Number of replicate seeds per grid point (`--seeds K`).
    pub replicates: u64,
}

impl Scenario {
    /// A scenario over `kinds × ns`, with single-point rate/pattern axes
    /// and one replicate.
    #[must_use]
    pub fn new(kinds: &[ArrangementKind], ns: &[usize]) -> Self {
        Self {
            kinds: kinds.to_vec(),
            ns: ns.to_vec(),
            rates: vec![None],
            patterns: vec![TrafficPattern::UniformRandom],
            workloads: vec![None],
            routers: vec![None],
            replicates: 1,
        }
    }

    /// Sweeps the given injection rates.
    #[must_use]
    pub fn with_rates(mut self, rates: &[f64]) -> Self {
        self.rates = rates.iter().copied().map(Some).collect();
        self
    }

    /// Sweeps the given traffic patterns.
    #[must_use]
    pub fn with_patterns(mut self, patterns: &[TrafficPattern]) -> Self {
        self.patterns = patterns.to_vec();
        self
    }

    /// Sweeps the given closed-loop workloads (replacing the neutral
    /// open-loop point).
    #[must_use]
    pub fn with_workloads(mut self, workloads: &[WorkloadKind]) -> Self {
        self.workloads = workloads.iter().copied().map(Some).collect();
        self
    }

    /// Sweeps the given router models (replacing the neutral
    /// default-router point).
    #[must_use]
    pub fn with_routers(mut self, routers: &[RouterModelKind]) -> Self {
        self.routers = routers.iter().copied().map(Some).collect();
        self
    }

    /// Runs `k` replicate seeds per grid point.
    #[must_use]
    pub fn with_replicates(mut self, k: u64) -> Self {
        self.replicates = k.max(1);
        self
    }

    /// Number of jobs the scenario expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
            * self.ns.len()
            * self.rates.len()
            * self.patterns.len()
            * self.workloads.len()
            * self.routers.len()
            * self.replicates as usize
    }

    /// `true` if any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into jobs with derived seeds.
    ///
    /// Iteration order is row-major over (kind, n, rate, pattern,
    /// workload, router, replicate) — the order sinks write rows in.
    #[must_use]
    pub fn jobs(&self, campaign_seed: u64) -> Vec<Job> {
        let mut out = Vec::with_capacity(self.len());
        for &kind in &self.kinds {
            for &n in &self.ns {
                for &rate in &self.rates {
                    for &pattern in &self.patterns {
                        for &workload in &self.workloads {
                            for &router in &self.routers {
                                for replicate in 0..self.replicates {
                                    // Neutral jobs keep the historical
                                    // five-word coordinates; the workload
                                    // and router words are appended only
                                    // when those axes are set (in axis
                                    // insertion order), so earlier seeds
                                    // are stable.
                                    let mut coords = vec![
                                        kind_code(kind),
                                        n as u64,
                                        rate.map_or(u64::MAX, f64::to_bits),
                                        pattern_code(pattern),
                                    ];
                                    if let Some(w) = workload {
                                        coords.push(w.code());
                                    }
                                    if let Some(r) = router {
                                        coords.push(r.code());
                                    }
                                    coords.push(replicate);
                                    let seed = derive_seed(campaign_seed, &coords);
                                    out.push(Job {
                                        kind,
                                        n,
                                        rate,
                                        pattern,
                                        workload,
                                        router,
                                        replicate,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One point of a [`Scenario`]: the coordinates plus the derived seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Arrangement family.
    pub kind: ArrangementKind,
    /// Chiplet count.
    pub n: usize,
    /// Injection rate, `None` when the runner picks rates itself.
    pub rate: Option<f64>,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
    /// Closed-loop workload (`None` = open-loop pattern job).
    pub workload: Option<WorkloadKind>,
    /// Router microarchitecture (`None` = default paper router).
    pub router: Option<RouterModelKind>,
    /// Replicate index within this grid point (`0..K`).
    pub replicate: u64,
    /// RNG seed derived from the campaign seed and the coordinates above.
    pub seed: u64,
}

impl Job {
    /// Default job weight for the pool's large-first schedule: simulation
    /// cost grows with the chiplet count, and quadratic-message kernels
    /// (ring all-reduce, all-to-all move Θ(E²) messages) dominate a mixed
    /// workload sweep. Weights only order the schedule — results never
    /// depend on them.
    #[must_use]
    pub fn weight(&self) -> u64 {
        let n = self.n as u64;
        match self.workload {
            Some(WorkloadKind::RingAllReduce | WorkloadKind::AllToAll) => n * n,
            _ => n,
        }
    }
}

/// Expands an ad-hoc job list (axes beyond the standard [`Scenario`],
/// e.g. routing × VC ablations) into `seeds` replicates per job, each
/// with a seed derived from the campaign seed, the job's coordinate words
/// (`coords`), and the replicate index — the same coordinate-not-position
/// rule [`Scenario::jobs`] follows. Replicates of one job are adjacent,
/// so results chunk by `seeds` for aggregation.
pub fn expand_replicates<J: Clone>(
    jobs: &[J],
    seeds: u64,
    campaign_seed: u64,
    coords: impl Fn(&J) -> Vec<u64>,
) -> Vec<(J, u64)> {
    let seeds = seeds.max(1);
    let mut out = Vec::with_capacity(jobs.len() * seeds as usize);
    for job in jobs {
        let mut c = coords(job);
        for replicate in 0..seeds {
            c.push(replicate);
            out.push((job.clone(), derive_seed(campaign_seed, &c)));
            c.pop();
        }
    }
    out
}

/// Stable coordinate code of an arrangement kind (presentation order of
/// [`ArrangementKind::ALL`]). Append-only: codes are never renumbered
/// (see the module-level axis evolution rule); code 4 is reserved for
/// searched (`OPT`) arrangements ([`OPTIMIZED_KIND_CODE`]).
#[must_use]
pub fn kind_code(kind: ArrangementKind) -> u64 {
    match kind {
        ArrangementKind::Grid => 0,
        ArrangementKind::Honeycomb => 1,
        ArrangementKind::Brickwall => 2,
        ArrangementKind::HexaMesh => 3,
    }
}

/// The kind-coordinate code of a search-discovered (`OPT`) arrangement —
/// outside [`ArrangementKind`], used by study flows that add optimized
/// rows next to the fixed families. Reserved here so no future kind can
/// collide with it.
pub const OPTIMIZED_KIND_CODE: u64 = 4;

/// Stable coordinate code of a traffic pattern, folding in its parameters
/// so that differently-parameterised hotspots get distinct seeds.
/// Append-only, like [`kind_code`].
#[must_use]
pub fn pattern_code(pattern: TrafficPattern) -> u64 {
    match pattern {
        TrafficPattern::UniformRandom => 0,
        TrafficPattern::Complement => 1,
        TrafficPattern::NeighborShift { shift } => 2 | ((shift as u64) << 8),
        TrafficPattern::BitComplement => 3,
        TrafficPattern::BitReverse => 4,
        TrafficPattern::Tornado => 5,
        TrafficPattern::Hotspot { num_hotspots, fraction_permille } => {
            6 | ((num_hotspots as u64) << 8) | (u64::from(fraction_permille) << 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_size_and_order() {
        let s = Scenario::new(&[ArrangementKind::Grid, ArrangementKind::HexaMesh], &[4, 9])
            .with_rates(&[0.1, 0.2])
            .with_replicates(3);
        assert_eq!(s.len(), 2 * 2 * 2 * 3);
        let jobs = s.jobs(1);
        assert_eq!(jobs.len(), s.len());
        // Row-major: first block is Grid at n=4, rate 0.1, replicates 0..3.
        assert_eq!(jobs[0].kind, ArrangementKind::Grid);
        assert_eq!(jobs[0].n, 4);
        assert_eq!(jobs[0].rate, Some(0.1));
        assert_eq!(jobs[2].replicate, 2);
        assert_eq!(jobs[3].rate, Some(0.2));
    }

    #[test]
    fn seeds_are_coordinate_stable() {
        let small = Scenario::new(&[ArrangementKind::Grid], &[4]).with_replicates(2);
        let wide =
            Scenario::new(&[ArrangementKind::Grid, ArrangementKind::Brickwall], &[4, 9, 16])
                .with_replicates(4);
        let find = |jobs: &[Job], n: usize, r: u64| {
            jobs.iter()
                .find(|j| j.kind == ArrangementKind::Grid && j.n == n && j.replicate == r)
                .map(|j| j.seed)
                .unwrap()
        };
        let a = small.jobs(42);
        let b = wide.jobs(42);
        // Growing the grid must not move existing points' seeds.
        assert_eq!(find(&a, 4, 0), find(&b, 4, 0));
        assert_eq!(find(&a, 4, 1), find(&b, 4, 1));
    }

    #[test]
    fn campaign_seed_changes_every_job_seed() {
        let s = Scenario::new(&[ArrangementKind::Grid], &[4, 9]).with_replicates(2);
        let a = s.jobs(1);
        let b = s.jobs(2);
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.seed, y.seed);
        }
    }

    #[test]
    fn expand_replicates_is_coordinate_stable() {
        let jobs = vec![(0u64, 10u64), (1, 20)];
        let a = expand_replicates(&jobs, 2, 7, |&(x, y)| vec![x, y]);
        assert_eq!(a.len(), 4);
        // Replicates adjacent, distinct seeds.
        assert_eq!(a[0].0, jobs[0]);
        assert_eq!(a[1].0, jobs[0]);
        assert_ne!(a[0].1, a[1].1);
        // Seeds depend on coordinates, not list position: prepending a job
        // leaves existing seeds unchanged.
        let wider = expand_replicates(&[(9, 90), jobs[0], jobs[1]], 2, 7, |&(x, y)| vec![x, y]);
        assert_eq!(wider[2].1, a[0].1);
        assert_eq!(wider[4].1, a[2].1);
    }

    #[test]
    fn workload_axis_expands_with_distinct_seeds() {
        let s = Scenario::new(&[ArrangementKind::Grid, ArrangementKind::HexaMesh], &[37])
            .with_workloads(&[WorkloadKind::RingAllReduce, WorkloadKind::Stencil])
            .with_replicates(2);
        assert_eq!(s.len(), 2 * 2 * 2);
        let jobs = s.jobs(5);
        assert_eq!(jobs.len(), 8);
        // Row-major: workload is the innermost non-replicate axis.
        assert_eq!(jobs[0].workload, Some(WorkloadKind::RingAllReduce));
        assert_eq!(jobs[2].workload, Some(WorkloadKind::Stencil));
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "workload coordinates must differentiate seeds");
    }

    #[test]
    fn open_loop_seeds_unmoved_by_the_workload_axis() {
        // The workload word is appended only for Some jobs, so a
        // pre-workload scenario's seeds are exactly the historical
        // five-coordinate derivation.
        let jobs = Scenario::new(&[ArrangementKind::Grid], &[9]).jobs(42);
        assert_eq!(jobs[0].workload, None);
        let expected = derive_seed(
            42,
            &[0, 9, u64::MAX, 0, 0], // kind, n, rate bits, pattern, replicate
        );
        assert_eq!(jobs[0].seed, expected);
    }

    #[test]
    fn optional_axis_rule_keeps_unused_seeds_fixed() {
        // The axis evolution rule (module docs): a scenario that leaves
        // every optional axis neutral derives exactly the historical
        // five-word seeds — for every point, not just the first — and a
        // used optional axis appends its word between the pattern and
        // replicate words.
        let s = Scenario::new(&[ArrangementKind::Grid, ArrangementKind::HexaMesh], &[4, 9])
            .with_rates(&[0.1])
            .with_patterns(&[TrafficPattern::Tornado])
            .with_replicates(2);
        for job in s.jobs(99) {
            let five_words = [
                kind_code(job.kind),
                job.n as u64,
                job.rate.map_or(u64::MAX, f64::to_bits),
                pattern_code(job.pattern),
                job.replicate,
            ];
            assert_eq!(job.seed, derive_seed(99, &five_words));
        }
        let closed = s.with_workloads(&[WorkloadKind::Stencil]);
        for job in closed.jobs(99) {
            let six_words = [
                kind_code(job.kind),
                job.n as u64,
                job.rate.map_or(u64::MAX, f64::to_bits),
                pattern_code(job.pattern),
                job.workload.expect("workload axis set").code(),
                job.replicate,
            ];
            assert_eq!(job.seed, derive_seed(99, &six_words));
        }
        // With both optional axes set, insertion order holds: workload
        // word first, then the router word, then the replicate word.
        let both = closed.with_routers(&[RouterModelKind::Fortified]);
        for job in both.jobs(99) {
            let seven_words = [
                kind_code(job.kind),
                job.n as u64,
                job.rate.map_or(u64::MAX, f64::to_bits),
                pattern_code(job.pattern),
                job.workload.expect("workload axis set").code(),
                job.router.expect("router axis set").code(),
                job.replicate,
            ];
            assert_eq!(job.seed, derive_seed(99, &seven_words));
        }
    }

    #[test]
    fn router_axis_expands_with_distinct_seeds() {
        let s = Scenario::new(&[ArrangementKind::Grid, ArrangementKind::HexaMesh], &[37])
            .with_routers(&[RouterModelKind::Baseline, RouterModelKind::Bubble])
            .with_replicates(2);
        assert_eq!(s.len(), 2 * 2 * 2);
        let jobs = s.jobs(5);
        assert_eq!(jobs.len(), 8);
        // Row-major: router is the innermost non-replicate axis.
        assert_eq!(jobs[0].router, Some(RouterModelKind::Baseline));
        assert_eq!(jobs[2].router, Some(RouterModelKind::Bubble));
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "router coordinates must differentiate seeds");
        // Even the explicit Baseline coordinate gets a word: sweeping the
        // axis is not the same grid point as leaving it neutral.
        let neutral = Scenario::new(&[ArrangementKind::Grid], &[37]).jobs(5);
        assert_ne!(jobs[0].seed, neutral[0].seed);
    }

    #[test]
    fn optimized_kind_code_stays_clear_of_real_kinds() {
        for kind in ArrangementKind::ALL {
            assert_ne!(kind_code(kind), OPTIMIZED_KIND_CODE);
        }
    }

    #[test]
    fn all_jobs_have_distinct_seeds() {
        let s = Scenario::new(&ArrangementKind::EVALUATED, &[2, 3, 4, 5, 6, 7, 8, 9])
            .with_rates(&[0.1, 0.2, 0.3])
            .with_patterns(&[
                TrafficPattern::UniformRandom,
                TrafficPattern::Tornado,
                TrafficPattern::Hotspot { num_hotspots: 1, fraction_permille: 500 },
                TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 500 },
            ])
            .with_replicates(3);
        let mut seeds: Vec<u64> = s.jobs(7).iter().map(|j| j.seed).collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "seed collision in grid expansion");
    }
}
