//! Content hashing for the serving layer: a dependency-free SHA-256.
//!
//! The result cache (see [`crate::cache`] / [`crate::serve`]) is
//! content-addressed: a cache key is the SHA-256 of a study's *canonical
//! request material* (resolved spec + engine version + schedule tier),
//! and every cached file carries its own SHA-256 so corruption is
//! detected on read instead of being served. The workspace builds
//! offline, so the digest is implemented here (FIPS 180-4) rather than
//! pulled in as a crate; the known-answer tests below pin it against the
//! standard vectors.

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes, folded into the padding.
    len: u64,
    block: [u8; 64],
    fill: usize,
}

/// The SHA-256 round constants (first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher at the standard initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            len: 0,
            block: [0; 64],
            fill: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        while !rest.is_empty() {
            let take = (64 - self.fill).min(rest.len());
            self.block[self.fill..self.fill + take].copy_from_slice(&rest[..take]);
            self.fill += take;
            rest = &rest[take..];
            if self.fill == 64 {
                let block = self.block;
                self.compress(&block);
                self.fill = 0;
            }
        }
    }

    /// Pads, finalises, and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Bypass update: the length word must not count itself.
        self.block[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One 64-byte block through the compression function.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// Lower-case hex SHA-256 of `data` — the cache-key and file-checksum
/// format used throughout the serving layer.
#[must_use]
pub fn sha256_hex(data: &[u8]) -> String {
    let mut hasher = Sha256::new();
    hasher.update(data);
    let digest = hasher.finalize();
    let mut hex = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        let _ = write!(hex, "{byte:02x}");
    }
    hex
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST known-answer vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut hasher = Sha256::new();
        // Streamed in awkward chunk sizes to exercise block straddling.
        let chunk = [b'a'; 997];
        let mut fed = 0usize;
        while fed < 1_000_000 {
            let take = chunk.len().min(1_000_000 - fed);
            hasher.update(&chunk[..take]);
            fed += take;
        }
        let digest = hasher.finalize();
        let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
    }

    #[test]
    fn chunking_is_equivalent_to_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256_hex(&data);
        for chunk in [1usize, 3, 63, 64, 65, 511] {
            let mut hasher = Sha256::new();
            for piece in data.chunks(chunk) {
                hasher.update(piece);
            }
            let digest = hasher.finalize();
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(hex, one_shot, "chunk size {chunk}");
        }
    }
}
