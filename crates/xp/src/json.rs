//! A small JSON value model, writer, and reader for campaign output and
//! study specs.
//!
//! The vendored serde stand-in has no data model (see `vendor/README.md`),
//! so the engine writes JSON through this hand-rolled module instead. The
//! output is plain RFC 8259 JSON; numbers are emitted with enough
//! precision to round-trip `f64`. [`parse`] is the matching reader — it
//! accepts any RFC 8259 document (used by `study --spec file.json` and by
//! the golden tests that compare campaign manifests).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, kept exact — 64-bit seeds must round-trip through the
    /// run manifest, so they never pass through `f64`.
    Int(i128),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn object() -> Self {
        Value::Obj(Vec::new())
    }

    /// Inserts `key: value` into an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Obj(entries) => entries.push((key.to_owned(), value.into())),
            other => panic!("set on non-object JSON value {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    // Integral values render without a fraction for
                    // readability; everything else with full precision.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Looks up `key` in an object; `None` on non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses an RFC 8259 JSON document into a [`Value`].
///
/// Integers without a fraction or exponent become [`Value::Int`] (so
/// 64-bit seeds round-trip exactly); everything else numeric becomes
/// [`Value::Num`].
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", char::from(c), *pos))
    }
}

/// Nesting cap: far beyond any campaign manifest or spec, and low enough
/// that a pathological document returns an error instead of blowing the
/// stack through recursion.
const MAX_DEPTH: usize = 128;

fn parse_value(
    src: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(src, pos, "null", Value::Null),
        Some(b't') => parse_lit(src, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(src, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(src, bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(src, bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(src, bytes, pos),
    }
}

fn parse_lit(src: &str, pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if src[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = parse_hex4(src, pos)?;
                        let scalar = match code {
                            // High surrogate: combine with the mandatory
                            // low-surrogate escape that must follow.
                            0xD800..=0xDBFF => {
                                if src.get(*pos..*pos + 2) != Some("\\u") {
                                    return Err(format!(
                                        "high surrogate \\u{code:04X} not followed by a low \
                                         surrogate escape"
                                    ));
                                }
                                *pos += 2;
                                let low = parse_hex4(src, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "\\u{code:04X} must pair with a low surrogate, got \
                                         \\u{low:04X}"
                                    ));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!("unpaired low surrogate \\u{code:04X}"));
                            }
                            other => other,
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| format!("invalid code point U+{scalar:X}"))?,
                        );
                    }
                    other => return Err(format!("bad escape \\{}", char::from(other))),
                }
            }
            _ => {
                // Consume one UTF-8 scalar from the source text.
                let ch = src[*pos..].chars().next().ok_or("invalid UTF-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\u` escape at `pos`.
fn parse_hex4(src: &str, pos: &mut usize) -> Result<u32, String> {
    let hex = src.get(*pos..*pos + 4).ok_or_else(|| "truncated \\u escape".to_owned())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
    *pos += 4;
    Ok(code)
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = &src[start..*pos];
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !fractional {
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Int(x as i128)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Arr(items)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let mut obj = Value::object();
        obj.set("name", "load_curves");
        obj.set("n", 37usize);
        obj.set("quick", false);
        obj.set("rows", Value::Arr(vec![Value::Num(0.5), Value::Null]));
        assert_eq!(
            obj.to_json(),
            r#"{"name":"load_curves","n":37,"quick":false,"rows":[0.5,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".to_owned());
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integers_stay_exact_beyond_f64() {
        // A full 64-bit seed must round-trip through the manifest.
        let seed = (1u64 << 53) + 1;
        assert_eq!(Value::from(seed).to_json(), "9007199254740993");
        assert_eq!(Value::from(u64::MAX).to_json(), "18446744073709551615");
    }

    #[test]
    fn numbers_round_trip_precision() {
        assert_eq!(Value::Num(0.1).to_json(), "0.1");
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        let third = 1.0 / 3.0;
        let rendered = Value::Num(third).to_json();
        assert_eq!(rendered.parse::<f64>().unwrap(), third);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut obj = Value::object();
        obj.set("name", "load_curves");
        obj.set("n", 37usize);
        obj.set("seed", (1u64 << 53) + 1);
        obj.set("quick", false);
        obj.set("rows", Value::Arr(vec![Value::Num(0.5), Value::Null, Value::Num(-3.25)]));
        obj.set("text", "a\"b\\c\nd");
        let parsed = parse(&obj.to_json()).unwrap();
        assert_eq!(parsed, obj);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Value::Arr(items) => Some(items.len()),
                _ => None,
            }),
            Some(3)
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        // Nesting under the cap still parses.
        let fine = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(parse(&fine).is_ok());
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Value::Str("Aé".to_owned()));
        // U+1F600 as a surrogate pair.
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap(), Value::Str("😀".to_owned()));
        // Unpaired or malformed surrogates are errors, never U+FFFD.
        assert!(parse(r#""\uD83D""#).is_err());
        assert!(parse(r#""\uD83Dx""#).is_err());
        assert!(parse(r#""\uD83DA""#).is_err());
        assert!(parse(r#""\uDE00""#).is_err());
    }

    #[test]
    fn parse_keeps_integers_exact() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::Int(18446744073709551615));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Value::from(None::<f64>).to_json(), "null");
        assert_eq!(Value::from(Some(2.0)).to_json(), "2");
    }
}
