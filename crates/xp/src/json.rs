//! A small JSON value model and writer for campaign output.
//!
//! The vendored serde stand-in has no data model (see `vendor/README.md`),
//! so the engine writes JSON through this hand-rolled module instead. The
//! output is plain RFC 8259 JSON; numbers are emitted with enough
//! precision to round-trip `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, kept exact — 64-bit seeds must round-trip through the
    /// run manifest, so they never pass through `f64`.
    Int(i128),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn object() -> Self {
        Value::Obj(Vec::new())
    }

    /// Inserts `key: value` into an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Obj(entries) => entries.push((key.to_owned(), value.into())),
            other => panic!("set on non-object JSON value {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    // Integral values render without a fraction for
                    // readability; everything else with full precision.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Int(x as i128)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(i128::from(x))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Arr(items)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let mut obj = Value::object();
        obj.set("name", "load_curves");
        obj.set("n", 37usize);
        obj.set("quick", false);
        obj.set("rows", Value::Arr(vec![Value::Num(0.5), Value::Null]));
        assert_eq!(
            obj.to_json(),
            r#"{"name":"load_curves","n":37,"quick":false,"rows":[0.5,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".to_owned());
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integers_stay_exact_beyond_f64() {
        // A full 64-bit seed must round-trip through the manifest.
        let seed = (1u64 << 53) + 1;
        assert_eq!(Value::from(seed).to_json(), "9007199254740993");
        assert_eq!(Value::from(u64::MAX).to_json(), "18446744073709551615");
    }

    #[test]
    fn numbers_round_trip_precision() {
        assert_eq!(Value::Num(0.1).to_json(), "0.1");
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        let third = 1.0 / 3.0;
        let rendered = Value::Num(third).to_json();
        assert_eq!(rendered.parse::<f64>().unwrap(), third);
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Value::from(None::<f64>).to_json(), "null");
        assert_eq!(Value::from(Some(2.0)).to_json(), "2");
    }
}
