//! The unified parallel experiment engine behind every figure, sweep, and
//! ablation in this repository.
//!
//! Every `crates/bench/src/bin/*` binary used to hand-roll its own sweep
//! loop, warmup constants, and arg parsing; this crate factors the shared
//! machinery into one code path (see `DESIGN.md` for the full model):
//!
//! * [`grid`] — declarative experiment grids: a [`grid::Scenario`] is a
//!   cartesian product over arrangement kind × chiplet count × injection
//!   rate × traffic pattern × replicate seed, expanded into [`grid::Job`]s
//!   with deterministic per-job seeds.
//! * [`pool`] — a scoped-thread worker pool with large-job-first
//!   scheduling and a progress ticker. Results are returned in job order,
//!   so output is byte-identical for any `--workers` value.
//! * [`seed`] — splitmix64 seed derivation from campaign seed + job
//!   coordinates (never from queue position).
//! * [`stats`] — replicate aggregation: mean / sample std / 95% CI.
//! * [`table`] + [`json`] + [`campaign`] — unified sinks: the CSV tables
//!   the binaries always wrote, plus a JSON campaign file with a run
//!   manifest (config, git describe, wall time).
//! * [`cli`] — the shared flag layer (`--workers`, `--seeds`, `--quick`,
//!   `--full`, `--out`, `--format`, `--seed`) with strict value parsing:
//!   malformed values (and unknown flags) abort instead of silently
//!   running the wrong experiment.
//! * [`spec`] + [`flow`] — the **declarative study API**: a
//!   [`spec::StudySpec`] value (loadable from TOML/JSON through [`toml`] /
//!   [`json`]) names a stage, axes, and overrides; [`flow::run_study`]
//!   compiles it onto the grid/campaign machinery above and writes the
//!   unified sinks. The `study` binary and every rewritten experiment
//!   binary run through this one path.
//! * [`hash`] + [`cache`] + [`serve`] — the **serving layer**: `study
//!   serve` keeps the engine resident and answers JSONL spec requests
//!   from a content-addressed result cache (key = SHA-256 of the
//!   resolved spec + engine version), with in-flight dedup and
//!   warm-start reuse of cached sub-grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod cli;
pub mod flow;
pub mod grid;
pub mod hash;
pub mod json;
pub mod pool;
pub mod seed;
pub mod spec;
pub mod stats;
pub mod table;
pub mod toml;

pub mod serve;

pub use campaign::Campaign;
pub use cli::CampaignArgs;
pub use flow::{run_study, StageHooks, StudyError, StudyReport};
pub use grid::{Job, Scenario};
pub use serve::{ServeConfig, Served, Server};
pub use spec::{StageKind, StudySpec};
pub use stats::Summary;
