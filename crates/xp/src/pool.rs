//! The scoped-thread worker pool every sweep runs on.
//!
//! Properties the rest of the workspace relies on:
//!
//! * **Large jobs first** — jobs are dispatched in descending weight order
//!   (weight ≈ expected cost, e.g. chiplet count), which keeps the long
//!   tail off the end of the schedule.
//! * **Deterministic output** — results are returned in *submission*
//!   order, not completion order, so a campaign's rows are byte-identical
//!   for any worker count.
//! * **Progress** — an optional ticker reports `done/total` to stderr
//!   every few seconds for long sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How often the progress ticker prints.
const TICK: Duration = Duration::from_secs(2);

/// One completed job's schedule record: which worker ran it and when,
/// relative to the pool's start. Feeds the engine-level trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpan {
    /// Submission index of the job.
    pub index: usize,
    /// Worker slot that ran it (a stable thread-track id).
    pub worker: usize,
    /// Start offset from the pool launch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub dur_ns: u64,
}

/// What a pool run did, beyond the results: schedule spans (when
/// requested) and occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Per-job schedule records, in submission order; empty unless
    /// [`PoolOptions::collect_spans`] was set.
    pub spans: Vec<JobSpan>,
    /// High-water mark of concurrently busy workers.
    pub peak_workers: usize,
    /// Wall time of the whole pool run, nanoseconds.
    pub wall_ns: u64,
}

/// Reporting knobs for [`run_jobs_reported`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolOptions<'a> {
    /// Label for the periodic `done/total` stderr ticker (`None` =
    /// silent).
    pub ticker: Option<&'a str>,
    /// Label for per-job completion lines on stderr (`--progress`);
    /// `None` = silent. Lines go to stderr only, so stdout sinks stay
    /// byte-identical.
    pub per_job: Option<&'a str>,
    /// Record a [`JobSpan`] per job.
    pub collect_spans: bool,
}

/// Pool size for jobs that are themselves `threads_per_job`-way parallel
/// (e.g. sharded simulations): divides the worker budget so job-level ×
/// shard-level parallelism never oversubscribes `--workers`, while always
/// leaving at least one pool worker.
#[must_use]
pub fn budgeted_workers(workers: usize, threads_per_job: usize) -> usize {
    (workers / threads_per_job.max(1)).max(1)
}

/// Runs `run` over every job on `workers` threads and returns the results
/// in submission order.
///
/// `weight` estimates relative job cost; heavier jobs are dispatched
/// first. `progress` labels the stderr ticker (`None` = silent).
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_jobs<J, R, W, F>(
    jobs: &[J],
    workers: usize,
    weight: W,
    run: F,
    progress: Option<&str>,
) -> Vec<R>
where
    J: Sync,
    R: Send,
    W: Fn(&J) -> u64,
    F: Fn(&J) -> R + Sync,
{
    let options = PoolOptions { ticker: progress, ..PoolOptions::default() };
    run_jobs_reported(jobs, workers, weight, run, options).0
}

/// [`run_jobs`] plus a [`PoolReport`]: per-job schedule spans (when
/// requested), peak worker occupancy, and the pool's wall time. Same
/// determinism contract — results in submission order, byte-identical
/// for any worker count; only the report (and stderr) reflects the
/// actual schedule.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_jobs_reported<J, R, W, F>(
    jobs: &[J],
    workers: usize,
    weight: W,
    run: F,
    options: PoolOptions<'_>,
) -> (Vec<R>, PoolReport)
where
    J: Sync,
    R: Send,
    W: Fn(&J) -> u64,
    F: Fn(&J) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return (Vec::new(), PoolReport::default());
    }
    // Dispatch stack: ascending weight, popped from the end ⇒ heaviest
    // first. Ties keep submission order for a stable schedule.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| (weight(&jobs[i]), std::cmp::Reverse(i)));
    let queue = Mutex::new(order);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    // Unwind-safe accounting: a counter incremented on drop, so a
    // panicking `run` still counts its job and an unwinding worker still
    // signs off. The ticker exits when every job is accounted for *or*
    // every worker has stopped — otherwise a panic that kills the last
    // worker with jobs still queued would leave the ticker (and the scope
    // join) waiting forever.
    struct CountOnDrop<'a>(&'a AtomicUsize);
    impl Drop for CountOnDrop<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let num_workers = workers.max(1).min(total);
    let workers_exited = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let spans: Mutex<Vec<JobSpan>> = Mutex::new(Vec::new());
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..num_workers {
            let busy = &busy;
            let peak = &peak;
            let spans = &spans;
            let done = &done;
            let workers_exited = &workers_exited;
            let queue = &queue;
            let slots = &slots;
            let run = &run;
            let options = &options;
            scope.spawn(move || {
                let _exited = CountOnDrop(workers_exited);
                loop {
                    let job = queue.lock().expect("queue lock").pop();
                    let Some(i) = job else { break };
                    let _done = CountOnDrop(done);
                    let now_busy = busy.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(now_busy, Ordering::Relaxed);
                    let start = Instant::now();
                    let result = run(&jobs[i]);
                    let dur = start.elapsed();
                    busy.fetch_sub(1, Ordering::Relaxed);
                    *slots[i].lock().expect("slot lock") = Some(result);
                    if options.collect_spans {
                        spans.lock().expect("span lock").push(JobSpan {
                            index: i,
                            worker,
                            start_ns: ns(start.duration_since(epoch)),
                            dur_ns: ns(dur),
                        });
                    }
                    if let Some(label) = options.per_job {
                        // Relaxed count: the line is informational, and
                        // stderr never feeds an output sink.
                        let d = done.load(Ordering::Relaxed) + 1;
                        eprintln!(
                            "{label}: job {i} done in {} ms [{d}/{total}]",
                            dur.as_millis()
                        );
                    }
                }
            });
        }
        if let Some(label) = options.ticker {
            let done = &done;
            let workers_exited = &workers_exited;
            scope.spawn(move || {
                let mut last = 0;
                let mut since_print = Duration::ZERO;
                loop {
                    let d = done.load(Ordering::Relaxed);
                    if d >= total || workers_exited.load(Ordering::Relaxed) >= num_workers {
                        break;
                    }
                    if d != last && since_print >= TICK {
                        eprintln!("{label}: {d}/{total} jobs done");
                        last = d;
                        since_print = Duration::ZERO;
                    }
                    let step = Duration::from_millis(100);
                    std::thread::sleep(step);
                    since_print += step;
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot mutex").expect("every job ran exactly once"))
        .collect();
    let mut spans = spans.into_inner().expect("span mutex");
    spans.sort_by_key(|s| s.index);
    let report = PoolReport {
        spans,
        peak_workers: peak.load(Ordering::Relaxed),
        wall_ns: ns(epoch.elapsed()),
    };
    (results, report)
}

/// Saturating nanosecond count of a duration.
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<usize> = (0..50).collect();
        for workers in [1, 4, 8] {
            let out = run_jobs(&jobs, workers, |&j| j as u64, |&j| j * 10, None);
            assert_eq!(out, (0..50).map(|j| j * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn heaviest_job_dispatches_first() {
        let jobs: Vec<u64> = vec![1, 5, 3, 9, 2];
        let first = AtomicU64::new(u64::MAX);
        run_jobs(
            &jobs,
            1,
            |&w| w,
            |&w| {
                let _ = first.compare_exchange(u64::MAX, w, Ordering::SeqCst, Ordering::SeqCst);
            },
            None,
        );
        assert_eq!(first.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn jobs_run_concurrently() {
        // Eight 50 ms sleeps on eight workers overlap (even on one CPU);
        // run serially they would need 400 ms.
        let jobs = vec![(); 8];
        let t0 = std::time::Instant::now();
        run_jobs(&jobs, 8, |_| 1, |()| std::thread::sleep(Duration::from_millis(50)), None);
        assert!(
            t0.elapsed() < Duration::from_millis(300),
            "pool did not overlap jobs: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn report_records_spans_and_occupancy() {
        let jobs: Vec<u32> = (0..12).collect();
        let options = PoolOptions { collect_spans: true, ..PoolOptions::default() };
        let (out, report) = run_jobs_reported(
            &jobs,
            4,
            |_| 1,
            |&j| {
                std::thread::sleep(Duration::from_millis(5));
                j * 2
            },
            options,
        );
        assert_eq!(out, (0..12).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(report.spans.len(), 12);
        // Spans come back sorted by submission index with sane fields.
        for (i, s) in report.spans.iter().enumerate() {
            assert_eq!(s.index, i);
            assert!(s.worker < 4);
            assert!(s.dur_ns > 0);
        }
        assert!(report.peak_workers >= 1 && report.peak_workers <= 4);
        assert!(report.wall_ns > 0);
    }

    #[test]
    fn spans_are_off_by_default() {
        let (_, report) =
            run_jobs_reported(&[1u32, 2], 2, |_| 1, |&j| j, PoolOptions::default());
        assert!(report.spans.is_empty());
        assert!(report.peak_workers >= 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_jobs(&Vec::<u32>::new(), 8, |_| 1, |&j| j, None);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(&[7u32], 32, |_| 1, |&j| j + 1, None);
        assert_eq!(out, vec![8]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn panicking_job_propagates_even_with_ticker() {
        // The ticker must terminate (all jobs accounted for) so the scope
        // can join and rethrow — a hang here fails the test by timeout.
        let jobs = vec![1u32, 2, 3];
        let _ = run_jobs(
            &jobs,
            2,
            |_| 1,
            |&j| {
                if j == 2 {
                    panic!("job exploded");
                }
                j
            },
            Some("panics"),
        );
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn sole_worker_panic_with_queued_jobs_does_not_hang() {
        // The first job kills the only worker while two jobs are still
        // queued; the ticker must notice all workers exited and let the
        // scope rethrow instead of waiting for done == total forever.
        let jobs = vec![9u32, 1, 2];
        let _ = run_jobs(
            &jobs,
            1,
            |&w| u64::from(w),
            |&j| {
                if j == 9 {
                    panic!("job exploded");
                }
                j
            },
            Some("panics"),
        );
    }
}
