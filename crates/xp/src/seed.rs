//! Deterministic per-job seed derivation.
//!
//! A job's RNG seed is a splitmix64 fold of the campaign seed and the job's
//! *coordinates* (arrangement kind, chiplet count, rate bits, pattern code,
//! replicate index) — never its position in the work queue. Two
//! consequences the engine's tests pin down:
//!
//! * results are identical for any `--workers` value, because scheduling
//!   order cannot influence any job's randomness;
//! * adding an axis value (say one more chiplet count) leaves every other
//!   job's seed — and therefore its result — unchanged.

/// One splitmix64 scramble step.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds `coords` into `campaign_seed`, scrambling after every word so
/// that permuted coordinates yield unrelated seeds.
#[must_use]
pub fn derive_seed(campaign_seed: u64, coords: &[u64]) -> u64 {
    let mut acc = splitmix64(campaign_seed);
    for &c in coords {
        acc = splitmix64(acc ^ c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_coordinates_same_seed() {
        assert_eq!(derive_seed(1, &[2, 3, 4]), derive_seed(1, &[2, 3, 4]));
    }

    #[test]
    fn any_coordinate_changes_the_seed() {
        let base = derive_seed(1, &[2, 3, 4]);
        assert_ne!(base, derive_seed(9, &[2, 3, 4]));
        assert_ne!(base, derive_seed(1, &[9, 3, 4]));
        assert_ne!(base, derive_seed(1, &[2, 9, 4]));
        assert_ne!(base, derive_seed(1, &[2, 3, 9]));
    }

    #[test]
    fn coordinate_order_matters() {
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
    }

    #[test]
    fn seeds_spread_over_the_word() {
        // Consecutive replicate indices must not produce clustered seeds.
        let seeds: Vec<u64> = (0..64).map(|r| derive_seed(7, &[1, 2, r])).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collision among 64 derived seeds");
        let ones: u32 = seeds.iter().map(|s| s.count_ones()).sum();
        let mean_ones = f64::from(ones) / 64.0;
        assert!((24.0..40.0).contains(&mean_ones), "bit bias: {mean_ones}");
    }
}
