//! The resident study service behind `study serve`.
//!
//! Requests are [`StudySpec`]s; results are the study's CSV/JSON
//! artefacts, served from a content-addressed disk cache
//! ([`crate::cache`]) whenever the engine has computed the same study
//! before. Three mechanisms keep repeat work off the pool:
//!
//! - **Exact hit** — the cache key is the SHA-256 of the request's
//!   *canonical material*: the resolved spec (stage-default axes written
//!   out, seed/replicates explicit, the transport-level `[serve]` and
//!   `[output]` sections erased) plus the engine version (`git
//!   describe`) and the `--quick`/`--full` schedule tier. Any encoding
//!   of the same study — JSON or TOML, keys in any order, defaults
//!   implicit or spelled out — lands on the same key and replays the
//!   same bytes; any semantic change, or a new engine version, is a
//!   different key and a cold miss.
//! - **In-flight dedup** — concurrent submissions of one key run the
//!   backend once; the followers block on the leader's completion and
//!   receive the identical artefacts.
//! - **Warm start** — when a new load-curve request's grid is a
//!   superset of a cached one, the donor's rows are replayed and only
//!   the delta cells run ([`crate::flow::run_load_curve_cells`]).
//!   Seeds derive from cell coordinates, so the spliced output is
//!   bit-identical to a from-scratch run — pinned by the serve battery.
//!
//! Served artefacts are deterministic: the CSV is the stage table
//! verbatim, and the JSON manifest is rebuilt from `(campaign, version,
//! key, canonical spec, rows)` without wall-clock or worker-count
//! fields, so a cache hit is byte-identical to the original
//! computation for any `--workers`.
//!
//! # Wire protocol
//!
//! [`serve_lines`] speaks newline-delimited JSON on any byte stream
//! (`study serve` wires it to stdin/stdout or a Unix socket). One
//! request per line: a bare spec object, or `{"id": …, "spec": {…}}`
//! to name the request. Requests are handled concurrently; every
//! response line is a whole JSON event tagged with the request id
//! (`accepted` → `file`… → `done`, or `error`), and a final `stats`
//! event follows end-of-input.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::{CacheStats, CachedFile, Entry, Lookup, Provenance, ResultCache};
use crate::campaign::table_columns_rows;
use crate::cli::CampaignArgs;
use crate::flow::{
    load_curve_cells, resolved_axes, run_load_curve_cells, run_stage, CurveCell, StageHooks,
    StageTable, StudyError,
};
use crate::grid::{kind_code, pattern_code};
use crate::hash::sha256_hex;
use crate::json::{self, Value};
use crate::spec::{ServeMode, ServeSpec, StageKind, StudySpec};
use crate::table::Table;
use crate::Campaign;

/// Server-side configuration: where the cache lives, the backend flags,
/// and the engine version folded into every cache key.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Backend campaign flags. `workers` drives the pool;
    /// `campaign_seed` and `seeds` are the defaults for specs that leave
    /// `seed`/`replicates` unset; `quick`/`full` pick the schedule tier
    /// (part of the cache key). `out`/`format` are unused — the server
    /// never writes sinks.
    pub args: CampaignArgs,
    /// Version string keyed into the cache; defaults to
    /// [`crate::campaign::git_describe`]. A new version never serves an
    /// old version's bytes.
    pub version: String,
}

impl ServeConfig {
    /// A config with the current engine version.
    #[must_use]
    pub fn new(args: CampaignArgs) -> Self {
        Self { args, version: crate::campaign::git_describe() }
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Outcome {
    /// Replayed from a verified disk entry.
    Hit,
    /// Computed from scratch.
    Miss,
    /// Spliced from a warm-start donor plus a delta run.
    Warm,
}

impl Outcome {
    /// Wire name of the outcome.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Warm => "warm",
        }
    }
}

/// One satisfied request: the artefacts plus full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The request's cache key.
    pub key: String,
    /// How the bytes were obtained *by this request*.
    pub outcome: Outcome,
    /// `true` when this submission blocked on an identical in-flight
    /// run instead of executing.
    pub deduped: bool,
    /// The artefacts, byte-identical to a from-scratch run.
    pub files: Vec<CachedFile>,
    /// How the underlying cache entry was produced (for a hit, this
    /// describes the original computation).
    pub provenance: Provenance,
}

/// A pending computation; followers block on `done`.
struct Flight {
    done: Mutex<Option<Result<Served, String>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { done: Mutex::new(None), ready: Condvar::new() }
    }

    fn publish(&self, result: Result<Served, String>) {
        *self.done.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Served, String> {
        let mut done = self.done.lock().unwrap();
        while done.is_none() {
            done = self.ready.wait(done).unwrap();
        }
        done.clone().expect("published")
    }
}

/// Removes the flight from the map and publishes a failure if the
/// leader unwinds without publishing, so followers never hang.
struct FlightGuard<'s, 'h> {
    server: &'s Server<'h>,
    key: String,
    published: bool,
}

impl FlightGuard<'_, '_> {
    fn publish(&mut self, flight: &Flight, result: Result<Served, String>) {
        flight.publish(result);
        self.published = true;
        self.server.inflight.lock().unwrap().remove(&self.key);
    }
}

impl Drop for FlightGuard<'_, '_> {
    fn drop(&mut self) {
        if !self.published {
            let mut inflight = self.server.inflight.lock().unwrap();
            if let Some(flight) = inflight.remove(&self.key) {
                flight.publish(Err("backend run panicked".to_owned()));
            }
        }
    }
}

/// The resident service: cache + in-flight table + counters. All
/// methods take `&self`; one server is shared across request threads.
pub struct Server<'h> {
    config: ServeConfig,
    cache: ResultCache,
    hooks: StageHooks<'h>,
    stats: Mutex<CacheStats>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
}

impl<'h> Server<'h> {
    /// A server caching under `cache_dir`.
    #[must_use]
    pub fn new(
        cache_dir: impl Into<std::path::PathBuf>,
        config: ServeConfig,
        hooks: StageHooks<'h>,
    ) -> Self {
        Self {
            config,
            cache: ResultCache::new(cache_dir),
            hooks,
            stats: Mutex::new(CacheStats::default()),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// The session counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }

    /// The underlying cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The canonical form and cache key of `spec` under this server's
    /// version and schedule tier.
    #[must_use]
    pub fn cache_key(&self, spec: &StudySpec) -> (String, StudySpec) {
        let canonical = canonical_spec(spec, &self.config);
        let mut material = Value::object();
        material.set("version", self.config.version.as_str());
        material.set("quick", self.config.args.quick);
        material.set("full", self.config.args.full);
        material.set("spec", canonical.to_value());
        (sha256_hex(material.to_json().as_bytes()), canonical)
    }

    /// Satisfies one request: exact hit, in-flight dedup, warm start,
    /// or a full backend run — in that order of preference, per the
    /// spec's `[serve]` section.
    ///
    /// # Errors
    ///
    /// [`StudyError::Spec`] for invalid or unservable specs (the
    /// `[observe]` artefacts and `workload.traces` write files outside
    /// the cache and must run through the `study` binary directly);
    /// otherwise whatever the backend stage returns.
    pub fn submit(&self, spec: &StudySpec) -> Result<Served, StudyError> {
        spec.validate().map_err(StudyError::Spec)?;
        if !spec.observe.is_off() {
            return Err(StudyError::Spec(
                "`[observe]` artefacts are not servable; run the study binary directly"
                    .to_owned(),
            ));
        }
        if spec.workload.traces {
            return Err(StudyError::Spec(
                "`workload.traces` writes files outside the cache and is not servable"
                    .to_owned(),
            ));
        }
        let mode = spec.serve.mode;
        let warm_wanted = spec.serve.warm_start && mode == ServeMode::Reuse;
        let (key, canonical) = self.cache_key(spec);
        self.stats.lock().unwrap().requests += 1;

        if mode == ServeMode::Reuse {
            match self.cache.load(&key, &self.config.version).map_err(StudyError::Io)? {
                Lookup::Hit(entry) => {
                    self.stats.lock().unwrap().hits += 1;
                    return Ok(Served {
                        key,
                        outcome: Outcome::Hit,
                        deduped: false,
                        files: entry.files,
                        provenance: entry.provenance,
                    });
                }
                Lookup::Evicted => self.stats.lock().unwrap().evictions += 1,
                Lookup::Miss => {}
            }
        }

        if mode == ServeMode::Bypass {
            // Direct execution: no cache read, write, or dedup.
            return self.compute(&key, &canonical, false);
        }

        // In-flight dedup: first submitter of a key leads, the rest
        // block on its completion.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if !leader {
            self.stats.lock().unwrap().deduped += 1;
            return match flight.wait() {
                Ok(mut served) => {
                    served.deduped = true;
                    Ok(served)
                }
                Err(message) => Err(StudyError::Stage(message)),
            };
        }

        let mut guard = FlightGuard { server: self, key: key.clone(), published: false };
        let result = self.compute(&key, &canonical, warm_wanted).and_then(|served| {
            let entry = Entry {
                key: key.clone(),
                version: self.config.version.clone(),
                spec: canonical.to_value(),
                files: served.files.clone(),
                provenance: served.provenance.clone(),
            };
            self.cache.store(&entry).map_err(StudyError::Io)?;
            Ok(served)
        });
        guard.publish(&flight, result.as_ref().map(Served::clone).map_err(|e| e.to_string()));
        result
    }

    /// Computes the request: warm start when possible, else a full
    /// backend run.
    fn compute(
        &self,
        key: &str,
        canonical: &StudySpec,
        warm_wanted: bool,
    ) -> Result<Served, StudyError> {
        let warm_eligible =
            warm_wanted && canonical.stage == StageKind::LoadCurve && !canonical.axes.optimized;
        if warm_eligible {
            if let Some(served) = self.try_warm(key, canonical)? {
                return Ok(served);
            }
        }
        let campaign = Campaign::new(&canonical.name, self.backend_args(canonical));
        let output = run_stage(canonical, &campaign, &self.hooks)?;
        let backend_jobs: u64 = campaign.stage_records().iter().map(|r| r.jobs as u64).sum();
        {
            let mut stats = self.stats.lock().unwrap();
            stats.misses += 1;
            stats.backend_runs += 1;
            stats.backend_jobs += backend_jobs;
        }
        let cells_total = curve_cells_of(canonical);
        let provenance = Provenance {
            outcome: "backend".to_owned(),
            cells_total,
            cells_cached: 0,
            cells_run: cells_total,
            warm_from: None,
            backend_jobs,
        };
        let files = self.served_files(canonical, key, &output.tables);
        Ok(Served {
            key: key.to_owned(),
            outcome: Outcome::Miss,
            deduped: false,
            files,
            provenance,
        })
    }

    /// Attempts a warm start: finds the cached load-curve entry whose
    /// grid covers the most cells of the request, replays those rows,
    /// and runs only the delta. `None` when no compatible donor exists.
    fn try_warm(&self, key: &str, canonical: &StudySpec) -> Result<Option<Served>, StudyError> {
        let cells = load_curve_cells(canonical);
        let index: HashMap<CellId, usize> =
            cells.iter().enumerate().map(|(i, c)| (cell_id(c), i)).collect();

        // Best donor = the compatible entry covering the most cells.
        let mut best: Option<(Entry, Vec<CurveCell>)> = None;
        for donor in self.cache.entries(&self.config.version).map_err(StudyError::Io)? {
            if donor.key == key {
                continue;
            }
            let Ok(donor_spec) = StudySpec::from_value(&donor.spec) else {
                continue;
            };
            if !warm_compatible(&donor_spec, canonical) {
                continue;
            }
            let donor_cells = load_curve_cells(&donor_spec);
            if donor_cells.is_empty()
                || !donor_cells.iter().all(|c| index.contains_key(&cell_id(c)))
            {
                continue;
            }
            // The donor's main CSV must map 1:1 onto its grid.
            let Some(csv) = donor.files.iter().find(|f| f.name.ends_with(".csv")) else {
                continue;
            };
            if csv.content.lines().count() != donor_cells.len() + 1 {
                continue;
            }
            if best.as_ref().is_none_or(|(_, cells)| cells.len() < donor_cells.len()) {
                best = Some((donor, donor_cells));
            }
        }
        let Some((donor, donor_cells)) = best else {
            return Ok(None);
        };

        let donor_csv =
            donor.files.iter().find(|f| f.name.ends_with(".csv")).expect("checked above");
        let cached_line: HashMap<CellId, &str> = donor_cells
            .iter()
            .zip(donor_csv.content.lines().skip(1))
            .map(|(c, line)| (cell_id(c), line))
            .collect();
        let delta: Vec<CurveCell> =
            cells.iter().copied().filter(|c| !cached_line.contains_key(&cell_id(c))).collect();

        let campaign = Campaign::new(&canonical.name, self.backend_args(canonical));
        let fresh = run_load_curve_cells(canonical, &campaign, &delta)?;
        let backend_jobs: u64 = campaign.stage_records().iter().map(|r| r.jobs as u64).sum();
        {
            let mut stats = self.stats.lock().unwrap();
            stats.warm += 1;
            if !delta.is_empty() {
                stats.backend_runs += 1;
                stats.backend_jobs += backend_jobs;
            }
        }

        // Splice: cached rows verbatim, fresh rows in delta order, all
        // in superset grid order — identical to a from-scratch run.
        let fresh_csv = fresh.to_csv();
        let mut fresh_lines = fresh_csv.lines().skip(1);
        let mut table =
            Table::new(&fresh.header().iter().map(String::as_str).collect::<Vec<_>>());
        for cell in &cells {
            let line = match cached_line.get(&cell_id(cell)) {
                Some(line) => line,
                None => fresh_lines.next().expect("one fresh line per delta cell"),
            };
            let parts: Vec<&str> = line.split(',').collect();
            let refs: Vec<&dyn std::fmt::Display> =
                parts.iter().map(|p| p as &dyn std::fmt::Display).collect();
            table.row(&refs);
        }

        let provenance = Provenance {
            outcome: "warm".to_owned(),
            cells_total: cells.len() as u64,
            cells_cached: (cells.len() - delta.len()) as u64,
            cells_run: delta.len() as u64,
            warm_from: Some(donor.key.clone()),
            backend_jobs,
        };
        let tables = vec![StageTable::main(table)];
        let files = self.served_files(canonical, key, &tables);
        Ok(Some(Served {
            key: key.to_owned(),
            outcome: Outcome::Warm,
            deduped: false,
            files,
            provenance,
        }))
    }

    /// The deterministic served artefacts of a stage's tables: per
    /// table, `<stem>.csv` (the rows verbatim) and `<stem>.json` (a
    /// manifest of campaign/version/key/config/columns/rows — no
    /// wall-clock or worker-count fields, so replays are byte-exact).
    fn served_files(
        &self,
        canonical: &StudySpec,
        key: &str,
        tables: &[StageTable],
    ) -> Vec<CachedFile> {
        let config = canonical.to_value();
        let mut files = Vec::with_capacity(tables.len() * 2);
        for staged in tables {
            let stem = staged.stem.clone().unwrap_or_else(|| canonical.name.clone());
            files.push(CachedFile {
                name: format!("{stem}.csv"),
                content: staged.table.to_csv(),
            });
            let mut doc = Value::object();
            doc.set("campaign", canonical.name.as_str());
            doc.set("version", self.config.version.as_str());
            doc.set("key", key);
            doc.set("config", config.clone());
            let (columns, rows) = table_columns_rows(&staged.table);
            doc.set("columns", columns);
            doc.set("rows", rows);
            files.push(CachedFile { name: format!("{stem}.json"), content: doc.to_json() });
        }
        files
    }

    /// Backend flags for one request: the server's flags with the
    /// canonical spec's explicit seed/replicates applied.
    fn backend_args(&self, canonical: &StudySpec) -> CampaignArgs {
        let mut args = self.config.args.clone();
        args.campaign_seed = canonical.seed.expect("canonical spec has explicit seed");
        args.seeds = canonical.replicates.expect("canonical spec has explicit replicates");
        args
    }
}

/// The canonical form keyed into the cache: resolved axes, explicit
/// seed/replicates, transport-level sections erased.
fn canonical_spec(spec: &StudySpec, config: &ServeConfig) -> StudySpec {
    let mut canonical = resolved_axes(spec, &config.args);
    canonical.seed = Some(canonical.seed.unwrap_or(config.args.campaign_seed));
    canonical.replicates = Some(canonical.replicates.unwrap_or(config.args.seeds).max(1));
    canonical.serve = ServeSpec::default();
    canonical.output = Default::default();
    canonical
}

/// A hashable cell coordinate (rates via their exact bit pattern —
/// the same rule the seed derivation uses).
type CellId = (u64, u64, u64, u64);

fn cell_id(cell: &CurveCell) -> CellId {
    (kind_code(cell.kind), cell.n as u64, cell.rate.to_bits(), pattern_code(cell.pattern))
}

/// `true` when `donor` produces rows reusable by `target`: the two
/// resolved load-curve specs are identical outside their grid axes and
/// name (rows depend on neither), so every donor cell's rows — seeds
/// included — match what a from-scratch run of `target` would compute.
fn warm_compatible(donor: &StudySpec, target: &StudySpec) -> bool {
    if donor.stage != StageKind::LoadCurve || donor.axes.optimized {
        return false;
    }
    let erase = |spec: &StudySpec| {
        let mut s = spec.clone();
        s.name = String::new();
        s.axes.kinds = None;
        s.axes.ns = None;
        s.axes.rates = None;
        s.axes.patterns = None;
        s.to_value().to_json()
    };
    erase(donor) == erase(target)
}

/// Load-curve grid size of `spec` (0 for other stages, where cell
/// accounting does not apply).
fn curve_cells_of(spec: &StudySpec) -> u64 {
    if spec.stage == StageKind::LoadCurve && !spec.axes.optimized {
        load_curve_cells(spec).len() as u64
    } else {
        0
    }
}

// ── JSONL transport ─────────────────────────────────────────────────────

/// Writes one whole event line under the lock.
fn emit<W: Write>(out: &Mutex<W>, event: &Value) {
    let mut out = out.lock().unwrap();
    let _ = writeln!(out, "{}", event.to_json());
    let _ = out.flush();
}

fn event(kind: &str, id: &str) -> Value {
    let mut doc = Value::object();
    doc.set("event", kind);
    doc.set("id", id);
    doc
}

/// Handles one request line: parse → submit → stream events.
fn handle_line<W: Write>(server: &Server, line: &str, fallback_id: &str, out: &Mutex<W>) {
    let (id, spec_value) = match json::parse(line) {
        Err(message) => {
            let mut err = event("error", fallback_id);
            err.set("message", format!("bad request JSON: {message}"));
            emit(out, &err);
            return;
        }
        Ok(doc) => match doc.get("spec") {
            Some(spec) => {
                let id = match doc.get("id") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => fallback_id.to_owned(),
                };
                (id, spec.clone())
            }
            None => (fallback_id.to_owned(), doc),
        },
    };
    let spec = match StudySpec::from_value(&spec_value) {
        Ok(spec) => spec,
        Err(message) => {
            let mut err = event("error", &id);
            err.set("message", format!("bad spec: {message}"));
            emit(out, &err);
            return;
        }
    };
    let (key, _) = server.cache_key(&spec);
    let mut accepted = event("accepted", &id);
    accepted.set("key", key.as_str());
    accepted.set("name", spec.name.as_str());
    emit(out, &accepted);
    match server.submit(&spec) {
        Err(error) => {
            let mut err = event("error", &id);
            err.set("message", error.to_string());
            emit(out, &err);
        }
        Ok(served) => {
            for file in &served.files {
                let mut doc = event("file", &id);
                doc.set("name", file.name.as_str());
                doc.set("sha256", file.sha256());
                doc.set("bytes", file.content.len() as u64);
                doc.set("content", file.content.as_str());
                emit(out, &doc);
            }
            let mut done = event("done", &id);
            done.set("key", served.key.as_str());
            done.set("outcome", served.outcome.name());
            done.set("deduped", served.deduped);
            done.set("provenance", served.provenance.to_value());
            emit(out, &done);
        }
    }
}

/// Serves newline-delimited JSON requests from `input`, streaming
/// events to `output`, until end-of-input. Requests run concurrently
/// (each on its own thread — the backend pool, not the request count,
/// bounds parallelism); every response line is whole and tagged with
/// its request id, so interleaved responses never bleed. A final
/// `stats` event reports the server's cumulative counters.
///
/// # Errors
///
/// Propagates input read errors; per-request failures are `error`
/// events, not transport errors.
pub fn serve_lines<R, W>(server: &Server, input: R, output: W) -> io::Result<CacheStats>
where
    R: BufRead,
    W: Write + Send,
{
    let out = Mutex::new(output);
    std::thread::scope(|scope| -> io::Result<()> {
        let mut index = 0u64;
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            index += 1;
            let out = &out;
            let fallback = format!("r{index}");
            scope.spawn(move || handle_line(server, &line, &fallback, out));
        }
        Ok(())
    })?;
    let stats = server.stats();
    let mut doc = Value::object();
    doc.set("event", "stats");
    doc.set("version", server.config.version.as_str());
    doc.set("stats", stats.to_value());
    emit(&out, &doc);
    Ok(stats)
}

/// Binds a Unix socket at `path` (replacing a stale socket file) and
/// serves each connection with [`serve_lines`] on its own thread, until
/// the process exits.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_unix(server: &Server, path: &Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(path)?;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let stream = stream?;
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(e) => {
                        eprintln!("serve: connection clone failed: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_lines(server, reader, stream) {
                    eprintln!("serve: connection failed: {e}");
                }
            });
        }
        Ok(())
    })
}
