//! Declarative study specifications.
//!
//! A [`StudySpec`] is a *value* describing an experiment campaign: which
//! [stage](StageKind) to run, the axes to sweep, parameter overrides, and
//! output configuration. Specs compile onto the existing
//! [`crate::grid::Scenario`] / [`crate::grid::Job`] machinery and execute
//! through [`crate::flow::run_study`] — so a new study is *data* (a TOML
//! or JSON file fed to the `study` binary, or a value built in code), not
//! a new hand-wired binary.
//!
//! The serialized form has a flat two-level shape shared by TOML
//! ([`StudySpec::from_toml`]) and JSON ([`StudySpec::from_json`]):
//! scalars `name` / `stage` / `seed` / `replicates` at the top level,
//! then one optional section per parameter group (`[axes]`, `[sim]`,
//! `[router]`, `[schedule]`, `[search]`, `[workload]`, `[saturation]`,
//! `[output]`).
//! Decoding is strict — unknown keys, malformed values, and axis names
//! that do not parse are errors, never silently ignored — and round-trips
//! through [`StudySpec::to_value`].
//!
//! Every struct here is `#[non_exhaustive]`: construct via
//! [`StudySpec::new`] / `Default` and set the public fields you need, so
//! adding a parameter group or axis later is not a breaking change.

use std::str::FromStr;

use chiplet_workload::WorkloadKind;
use hexamesh::arrangement::ArrangementKind;
use nocsim::{
    OutputArbPolicy, RouterModel, RouterModelKind, RoutingKind, TrafficPattern, VcAllocPolicy,
};

use crate::json::Value;
use crate::toml;

/// The experiment stage a spec runs. Each stage resolves its own axis
/// defaults (see `DESIGN.md`'s stage table) and defines the output
/// schema; the schemas of the stages that replaced hand-wired binaries
/// are byte-compatible with what those binaries always wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StageKind {
    /// Analytic diameter + bisection proxies (Fig. 6 methodology).
    Proxies,
    /// Full cycle-accurate evaluation: link budget, zero-load latency,
    /// saturation throughput (the Fig. 7 pipeline), with an optional
    /// grid-normalised companion table.
    Saturation,
    /// Zero-load + saturation per traffic pattern, ranked against the
    /// grid (the traffic-sensitivity ablation).
    Traffic,
    /// Latency-vs-offered-load curves with tail percentiles.
    LoadCurve,
    /// Closed-loop application workloads ranked by makespan.
    Workload,
    /// Arrangement search: optimized placements vs the fixed families
    /// (provided through [`crate::flow::StageHooks`], because the
    /// optimizer crate sits above the engine in the dependency DAG).
    Search,
    /// HexaMesh vs length-aware grid topologies (Kite-style §VII).
    Kite,
    /// Steady-state thermal comparison of arrangements.
    Thermal,
    /// Monolithic vs 2.5D manufacturing cost model.
    Cost,
    /// Fault tolerance: structural resilience metrics (bridges,
    /// articulation points, edge connectivity) plus graceful-degradation
    /// curves — saturation throughput and closed-loop makespans under
    /// deterministic live link failures.
    Resilience,
    /// Router-microarchitecture fidelity: zero-load latency + saturation
    /// throughput per arrangement across a matrix of
    /// [`nocsim::RouterModelKind`]s, checking whether the arrangement
    /// ranking survives router-model changes.
    Router,
}

impl StageKind {
    /// Every stage, in documentation order.
    pub const ALL: [StageKind; 11] = [
        StageKind::Proxies,
        StageKind::Saturation,
        StageKind::Traffic,
        StageKind::LoadCurve,
        StageKind::Workload,
        StageKind::Search,
        StageKind::Kite,
        StageKind::Thermal,
        StageKind::Cost,
        StageKind::Resilience,
        StageKind::Router,
    ];

    /// Canonical name, as accepted by the [`FromStr`] parser and used in
    /// spec files. Round-trips through `parse`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Proxies => "proxies",
            StageKind::Saturation => "saturation",
            StageKind::Traffic => "traffic",
            StageKind::LoadCurve => "load_curve",
            StageKind::Workload => "workload",
            StageKind::Search => "search",
            StageKind::Kite => "kite",
            StageKind::Thermal => "thermal",
            StageKind::Cost => "cost",
            StageKind::Resilience => "resilience",
            StageKind::Router => "router",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StageKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        StageKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            let names: Vec<&str> = StageKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown stage {s:?} (expected one of {})", names.join("|"))
        })
    }
}

/// The sweep axes. Every axis is optional; `None` resolves to the
/// running stage's default (which may depend on `--quick`), so a spec
/// names only the dimensions it constrains.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct Axes {
    /// Arrangement families to evaluate.
    pub kinds: Option<Vec<ArrangementKind>>,
    /// Chiplet counts.
    pub ns: Option<Vec<usize>>,
    /// Injection rates (flits/cycle/endpoint); load-curve stage only.
    pub rates: Option<Vec<f64>>,
    /// Spatial traffic patterns.
    pub patterns: Option<Vec<TrafficPattern>>,
    /// Closed-loop workload kernels; workload stage, plus the router
    /// stage's optional makespan columns.
    pub workloads: Option<Vec<WorkloadKind>>,
    /// Named router-microarchitecture models; router stage only.
    pub routers: Option<Vec<RouterModelKind>>,
    /// Also evaluate a search-discovered (`OPT`) arrangement next to the
    /// fixed families (load-curve and workload stages; requires the
    /// search hook — see [`crate::flow::StageHooks`]).
    pub optimized: bool,
}

/// Simulator parameter overrides, applied on top of the paper defaults.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct SimOverrides {
    /// Routing algorithm (`adaptive` | `deterministic` | `updown`).
    pub routing: Option<RoutingKind>,
    /// Virtual channels per port.
    pub vcs: Option<usize>,
    /// Buffer depth in flits per VC.
    pub buffer_depth: Option<usize>,
    /// Worker threads each simulation is sharded across
    /// ([`nocsim::ShardedSimulator`]; results stay bit-identical to the
    /// serial engine). Not supported by the workload stage, whose
    /// closed-loop driver is serial-only.
    pub shards: Option<usize>,
    /// Named router-microarchitecture model every run uses
    /// (`baseline` | `randomvc` | … — see [`RouterModelKind`]).
    /// Mutually exclusive with a non-neutral `[router]` section and with
    /// the `axes.routers` sweep.
    pub router: Option<RouterModelKind>,
}

impl SimOverrides {
    /// `true` if no override is set (the stage runs paper defaults).
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.routing.is_none()
            && self.vcs.is_none()
            && self.buffer_depth.is_none()
            && self.shards.is_none()
            && self.router.is_none()
    }
}

/// Field-level router-microarchitecture overrides (`[router]`): composes
/// a custom [`RouterModel`] instead of picking a named
/// [`RouterModelKind`]. Unset fields keep the paper-default policy.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct RouterSpec {
    /// VC allocation policy (`roundrobin` | `random` | `leastloaded`).
    pub vc_alloc: Option<VcAllocPolicy>,
    /// Output arbitration policy (`roundrobin` | `oldest` | `transit`).
    pub output_arb: Option<OutputArbPolicy>,
    /// Bubble flow control on the escape VC: entering VC 0 requires two
    /// free slots downstream.
    pub bubble: Option<bool>,
    /// Extra crossbar pipeline cycles between switch allocation and link
    /// traversal (0 = the paper's single-stage crossbar; at most 16).
    pub crossbar_depth: Option<u64>,
}

impl RouterSpec {
    /// `true` if no field is set (runs keep the default router model).
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        *self == Self::default()
    }

    /// The [`RouterModel`] this section describes: `base` with every set
    /// field overridden.
    #[must_use]
    pub fn apply(&self, base: RouterModel) -> RouterModel {
        RouterModel {
            vc_alloc: self.vc_alloc.unwrap_or(base.vc_alloc),
            output_arb: self.output_arb.unwrap_or(base.output_arb),
            bubble_escape: self.bubble.unwrap_or(base.bubble_escape),
            crossbar_depth: self.crossbar_depth.unwrap_or(base.crossbar_depth),
        }
    }
}

/// An explicit measurement schedule. When absent, stages follow the
/// historical `--quick` / default / `--full` windows of the binary they
/// replaced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Schedule {
    /// Cycles simulated before the measurement window opens.
    pub warmup_cycles: u64,
    /// Cycles in the measurement window.
    pub measure_cycles: u64,
    /// Saturation-search resolution on the injection rate; `None` keeps
    /// the stage default.
    pub rate_resolution: Option<f64>,
}

impl Schedule {
    /// A schedule with the given windows and the default resolution.
    #[must_use]
    pub fn new(warmup_cycles: u64, measure_cycles: u64) -> Self {
        Self { warmup_cycles, measure_cycles, rate_resolution: None }
    }

    /// Overlays this schedule onto a stage's base
    /// [`MeasureConfig`](nocsim::MeasureConfig) —
    /// the one merge rule every stage (including hook-provided ones)
    /// shares, so a future schedule field cannot be honoured by some
    /// stages and ignored by others.
    pub fn apply(&self, schedule: &mut nocsim::MeasureConfig) {
        schedule.warmup_cycles = self.warmup_cycles;
        schedule.measure_cycles = self.measure_cycles;
        if let Some(res) = self.rate_resolution {
            schedule.rate_resolution = res;
        }
    }
}

/// Arrangement-search parameters (search stage and `optimized` axis).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchOverrides {
    /// Independent annealing restarts; `None` = stage default.
    pub restarts: Option<usize>,
    /// Annealing iterations per restart; `None` = stage default.
    pub iterations: Option<usize>,
    /// Validate top candidates with cycle-accurate saturation + workload
    /// makespan (search stage; default `true`).
    pub validate: bool,
}

impl Default for SearchOverrides {
    fn default() -> Self {
        Self { restarts: None, iterations: None, validate: true }
    }
}

/// Workload-stage parameters.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct WorkloadOverrides {
    /// Cycle budget per run; `None` = the historical 50 M guard.
    pub max_cycles: Option<u64>,
    /// Additionally record each swept DAG as a replayable trace under
    /// `<out>/traces/`.
    pub traces: bool,
}

/// Saturation-stage parameters.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct SaturationOverrides {
    /// Rates probed per saturation-search round (explicit, never derived
    /// from `--workers`, so rows stay worker-count independent).
    pub fanout: Option<usize>,
    /// File stem of the grid-normalised companion table (Fig. 7c/d);
    /// `None` skips it.
    pub normalized_stem: Option<String>,
}

/// Resilience-stage fault-injection parameters (the degradation sweep;
/// the structural table follows `axes.ns` / `axes.kinds` instead).
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct FaultsSpec {
    /// Chiplet counts of the degradation sweep; `None` = the stage
    /// default (`{37, 91, 169}`, shrunk under `--quick`).
    pub ns: Option<Vec<usize>>,
    /// Numbers of randomly chosen links to kill per run; `None` =
    /// `{0, 1, 2, 4}`. `0` rows are the healthy baseline.
    pub link_failures: Option<Vec<usize>>,
    /// Cycle at which all of a run's failures strike; `None` = half the
    /// resolved warmup window (tables rebuild before measurement opens).
    pub fault_cycle: Option<u64>,
    /// Source-retransmission timeout (cycles) for the closed-loop
    /// makespan runs; `None` = the [`nocsim::RetransmitConfig`] default.
    pub retransmit_timeout: Option<u64>,
}

/// Observability settings (`[observe]`): windowed time-series probes,
/// per-load-point congestion heatmaps, and engine-level tracing.
///
/// Everything here is off by default, and turning any of it on never
/// changes the result tables: probes record into preallocated buffers on
/// the side (the zero-perturbation contract, pinned by the nocsim probe
/// equivalence tests), heatmaps/timelines are extra files, and tracing
/// only watches the worker pool.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct ObserveSpec {
    /// Probe sampling window in cycles; `None` = 250 when a probe
    /// consumer (`timeline` / `heatmap`) is enabled.
    pub sample_every: Option<u64>,
    /// Render a congestion heatmap SVG per load point (replicate 0),
    /// merging per-link flit counts with the physical placement.
    pub heatmap: bool,
    /// Write the windowed time series as a `timeline` companion table.
    pub timeline: bool,
    /// Write engine-level spans as Chrome-trace `trace.json` next to the
    /// manifest (loadable by Perfetto / `chrome://tracing`).
    pub trace: bool,
}

impl ObserveSpec {
    /// `true` when nothing is enabled (the default).
    #[must_use]
    pub fn is_off(&self) -> bool {
        *self == Self::default()
    }

    /// `true` when a simulator-side probe must be attached (the timeline
    /// and heatmap both consume per-run observations).
    #[must_use]
    pub fn wants_probe(&self) -> bool {
        self.timeline || self.heatmap
    }
}

/// Output configuration beyond the shared `--out` / `--format` flags.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct OutputSpec {
    /// Default output directory when `--out` is absent.
    pub dir: Option<String>,
    /// When `--out` is absent, write to the repository root — the
    /// tracked-`BENCH_*` convention. Overrides `dir`.
    pub to_repo_root: bool,
}

/// How a request interacts with the serving layer's result cache
/// (`serve.mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ServeMode {
    /// Serve from the cache when possible, compute and store otherwise
    /// (the default).
    #[default]
    Reuse,
    /// Compute fresh without reading or writing the cache.
    Bypass,
    /// Compute fresh and overwrite whatever the cache held.
    Refresh,
}

impl ServeMode {
    /// Canonical name, as accepted by the [`FromStr`] parser.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServeMode::Reuse => "reuse",
            ServeMode::Bypass => "bypass",
            ServeMode::Refresh => "refresh",
        }
    }
}

impl FromStr for ServeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "reuse" => Ok(ServeMode::Reuse),
            "bypass" => Ok(ServeMode::Bypass),
            "refresh" => Ok(ServeMode::Refresh),
            other => {
                Err(format!("unknown serve mode {other:?} (expected reuse|bypass|refresh)"))
            }
        }
    }
}

/// Cache-control settings for the serving layer (`[serve]`).
///
/// Transport-level only: nothing here changes what a study computes, so
/// the whole section is erased from the canonical form the cache key is
/// hashed over (see `xp::serve`). Any stage may carry it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeSpec {
    /// Cache interaction mode.
    pub mode: ServeMode,
    /// Allow serving a superset grid by reusing cached sub-grid cells
    /// and running only the delta coordinates (default `true`;
    /// load-curve stage only — other stages always run whole).
    pub warm_start: bool,
}

impl Default for ServeSpec {
    fn default() -> Self {
        Self { mode: ServeMode::Reuse, warm_start: true }
    }
}

/// A declarative study: one stage, its axes, and its parameters. See the
/// [module docs](self) for the file format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StudySpec {
    /// Campaign name — the output file stem.
    pub name: String,
    /// The stage to run.
    pub stage: StageKind,
    /// Default campaign seed when `--seed` is absent.
    pub seed: Option<u64>,
    /// Default replicate count when `--seeds` is absent.
    pub replicates: Option<u64>,
    /// Sweep axes.
    pub axes: Axes,
    /// Simulator overrides.
    pub sim: SimOverrides,
    /// Field-level router-model overrides.
    pub router: RouterSpec,
    /// Measurement-schedule override.
    pub schedule: Option<Schedule>,
    /// Search parameters.
    pub search: SearchOverrides,
    /// Workload parameters.
    pub workload: WorkloadOverrides,
    /// Saturation parameters.
    pub saturation: SaturationOverrides,
    /// Fault-injection parameters (resilience stage).
    pub faults: FaultsSpec,
    /// Observability settings.
    pub observe: ObserveSpec,
    /// Output configuration.
    pub output: OutputSpec,
    /// Serving-layer cache control.
    pub serve: ServeSpec,
}

impl StudySpec {
    /// A spec named `name` running `stage` with every axis and parameter
    /// at its stage default.
    #[must_use]
    pub fn new(name: &str, stage: StageKind) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            seed: None,
            replicates: None,
            axes: Axes::default(),
            sim: SimOverrides::default(),
            router: RouterSpec::default(),
            schedule: None,
            search: SearchOverrides::default(),
            workload: WorkloadOverrides::default(),
            saturation: SaturationOverrides::default(),
            faults: FaultsSpec::default(),
            observe: ObserveSpec::default(),
            output: OutputSpec::default(),
            serve: ServeSpec::default(),
        }
    }

    /// Decodes a spec from parsed TOML source.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or schema error.
    pub fn from_toml(src: &str) -> Result<Self, String> {
        Self::from_value(&toml::parse(src)?)
    }

    /// Decodes a spec from JSON source.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or schema error.
    pub fn from_json(src: &str) -> Result<Self, String> {
        Self::from_value(&crate::json::parse(src)?)
    }

    /// Decodes a spec from the shared [`Value`] model (the common path
    /// behind [`StudySpec::from_toml`] / [`StudySpec::from_json`]).
    /// Strict: unknown keys and malformed values are errors.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let Value::Obj(entries) = value else {
            return Err("spec root must be a table/object".to_owned());
        };
        // The TOML reader rejects duplicate keys at parse time; JSON
        // specs reach here with duplicates intact, so enforce the same
        // assigns-once rule uniformly (a double assignment is almost
        // certainly a typo, and first-wins vs last-wins would otherwise
        // be an accident of the decode path).
        reject_duplicate_keys(entries, "spec")?;
        let name = str_field(value, "name")?
            .ok_or("spec is missing the required `name` key")?
            .to_owned();
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(format!("`name` {name:?} must be a non-empty file stem"));
        }
        let stage: StageKind = str_field(value, "stage")?
            .ok_or("spec is missing the required `stage` key")?
            .parse()?;
        let mut spec = StudySpec::new(&name, stage);
        spec.seed = u64_field(value, "seed")?;
        spec.replicates = u64_field(value, "replicates")?;
        if spec.replicates == Some(0) {
            return Err("`replicates` must be at least 1".to_owned());
        }
        for (key, section) in entries {
            match key.as_str() {
                "name" | "stage" | "seed" | "replicates" => {}
                "axes" => spec.axes = decode_axes(section)?,
                "sim" => spec.sim = decode_sim(section)?,
                "router" => spec.router = decode_router(section)?,
                "schedule" => spec.schedule = Some(decode_schedule(section)?),
                "search" => spec.search = decode_search(section)?,
                "workload" => spec.workload = decode_workload(section)?,
                "saturation" => spec.saturation = decode_saturation(section)?,
                "faults" => spec.faults = decode_faults(section)?,
                "observe" => spec.observe = decode_observe(section)?,
                "output" => spec.output = decode_output(section)?,
                "serve" => spec.serve = decode_serve(section)?,
                other => return Err(format!("unknown spec key {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Encodes the spec back into the [`Value`] model, emitting only the
    /// keys that differ from the defaults. `from_value(to_value(s)) == s`
    /// for every valid spec (pinned by tests); the flow also embeds this
    /// value as the `config` object of the campaign manifest, so every
    /// result file records the resolved study that produced it.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut root = Value::object();
        root.set("name", self.name.as_str());
        root.set("stage", self.stage.name());
        if let Some(seed) = self.seed {
            root.set("seed", seed);
        }
        if let Some(replicates) = self.replicates {
            root.set("replicates", replicates);
        }
        let mut axes = Value::object();
        if let Some(kinds) = &self.axes.kinds {
            axes.set(
                "kinds",
                Value::Arr(kinds.iter().map(|k| Value::from(k.name())).collect()),
            );
        }
        if let Some(ns) = &self.axes.ns {
            axes.set("ns", Value::Arr(ns.iter().map(|&n| Value::from(n)).collect()));
        }
        if let Some(rates) = &self.axes.rates {
            axes.set("rates", Value::Arr(rates.iter().map(|&r| Value::Num(r)).collect()));
        }
        if let Some(patterns) = &self.axes.patterns {
            axes.set(
                "patterns",
                Value::Arr(patterns.iter().map(|p| Value::from(p.name())).collect()),
            );
        }
        if let Some(workloads) = &self.axes.workloads {
            axes.set(
                "workloads",
                Value::Arr(workloads.iter().map(|w| Value::from(w.label())).collect()),
            );
        }
        if let Some(routers) = &self.axes.routers {
            axes.set(
                "routers",
                Value::Arr(routers.iter().map(|r| Value::from(r.name())).collect()),
            );
        }
        if self.axes.optimized {
            axes.set("optimized", true);
        }
        set_section(&mut root, "axes", axes);

        let mut sim = Value::object();
        if let Some(routing) = self.sim.routing {
            sim.set("routing", routing.name());
        }
        if let Some(vcs) = self.sim.vcs {
            sim.set("vcs", vcs);
        }
        if let Some(depth) = self.sim.buffer_depth {
            sim.set("buffer_depth", depth);
        }
        if let Some(shards) = self.sim.shards {
            sim.set("shards", shards);
        }
        if let Some(router) = self.sim.router {
            sim.set("router", router.name());
        }
        set_section(&mut root, "sim", sim);

        let mut router = Value::object();
        if let Some(vc_alloc) = self.router.vc_alloc {
            router.set("vc_alloc", vc_alloc.name());
        }
        if let Some(output_arb) = self.router.output_arb {
            router.set("output_arb", output_arb.name());
        }
        if let Some(bubble) = self.router.bubble {
            router.set("bubble", bubble);
        }
        if let Some(depth) = self.router.crossbar_depth {
            router.set("crossbar_depth", depth);
        }
        set_section(&mut root, "router", router);

        if let Some(schedule) = &self.schedule {
            let mut s = Value::object();
            s.set("warmup_cycles", schedule.warmup_cycles);
            s.set("measure_cycles", schedule.measure_cycles);
            if let Some(res) = schedule.rate_resolution {
                s.set("rate_resolution", res);
            }
            set_section(&mut root, "schedule", s);
        }

        let mut search = Value::object();
        if let Some(restarts) = self.search.restarts {
            search.set("restarts", restarts);
        }
        if let Some(iterations) = self.search.iterations {
            search.set("iterations", iterations);
        }
        if !self.search.validate {
            search.set("validate", false);
        }
        set_section(&mut root, "search", search);

        let mut workload = Value::object();
        if let Some(max_cycles) = self.workload.max_cycles {
            workload.set("max_cycles", max_cycles);
        }
        if self.workload.traces {
            workload.set("traces", true);
        }
        set_section(&mut root, "workload", workload);

        let mut saturation = Value::object();
        if let Some(fanout) = self.saturation.fanout {
            saturation.set("fanout", fanout);
        }
        if let Some(stem) = &self.saturation.normalized_stem {
            saturation.set("normalized_stem", stem.as_str());
        }
        set_section(&mut root, "saturation", saturation);

        let mut faults = Value::object();
        if let Some(ns) = &self.faults.ns {
            faults.set("ns", Value::Arr(ns.iter().map(|&n| Value::from(n)).collect()));
        }
        if let Some(counts) = &self.faults.link_failures {
            faults.set(
                "link_failures",
                Value::Arr(counts.iter().map(|&c| Value::from(c)).collect()),
            );
        }
        if let Some(cycle) = self.faults.fault_cycle {
            faults.set("fault_cycle", cycle);
        }
        if let Some(timeout) = self.faults.retransmit_timeout {
            faults.set("retransmit_timeout", timeout);
        }
        set_section(&mut root, "faults", faults);

        let mut observe = Value::object();
        if let Some(every) = self.observe.sample_every {
            observe.set("sample_every", every);
        }
        if self.observe.heatmap {
            observe.set("heatmap", true);
        }
        if self.observe.timeline {
            observe.set("timeline", true);
        }
        if self.observe.trace {
            observe.set("trace", true);
        }
        set_section(&mut root, "observe", observe);

        let mut output = Value::object();
        if let Some(dir) = &self.output.dir {
            output.set("dir", dir.as_str());
        }
        if self.output.to_repo_root {
            output.set("to_repo_root", true);
        }
        set_section(&mut root, "output", output);

        let mut serve = Value::object();
        if self.serve.mode != ServeMode::default() {
            serve.set("mode", self.serve.mode.name());
        }
        if !self.serve.warm_start {
            serve.set("warm_start", false);
        }
        set_section(&mut root, "serve", serve);
        root
    }

    /// Checks cross-field constraints the per-key decoders cannot see.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(ns) = &self.axes.ns {
            if ns.is_empty() {
                return Err("axes.ns must not be empty".to_owned());
            }
            let floor = match self.stage {
                StageKind::Proxies | StageKind::Thermal | StageKind::Cost => 1,
                _ => 2, // simulation needs at least two endpoints
            };
            if let Some(&bad) = ns.iter().find(|&&n| n < floor) {
                return Err(format!("axes.ns value {bad} is below the stage minimum {floor}"));
            }
        }
        for (key, empty) in [
            ("kinds", self.axes.kinds.as_ref().is_some_and(Vec::is_empty)),
            ("rates", self.axes.rates.as_ref().is_some_and(Vec::is_empty)),
            ("patterns", self.axes.patterns.as_ref().is_some_and(Vec::is_empty)),
            ("workloads", self.axes.workloads.as_ref().is_some_and(Vec::is_empty)),
            ("routers", self.axes.routers.as_ref().is_some_and(Vec::is_empty)),
        ] {
            if empty {
                return Err(format!("axes.{key} must not be empty"));
            }
        }
        if let Some(rates) = &self.axes.rates {
            if let Some(&bad) = rates.iter().find(|&&r| !(r > 0.0 && r <= 1.0)) {
                return Err(format!("axes.rates value {bad} is outside (0, 1]"));
            }
        }
        if self.stage == StageKind::Saturation
            && self.axes.patterns.as_ref().is_some_and(|p| p.len() > 1)
        {
            return Err(
                "the saturation stage takes a single pattern (use the traffic stage to sweep \
                 patterns)"
                    .to_owned(),
            );
        }
        if self.axes.optimized
            && !matches!(self.stage, StageKind::LoadCurve | StageKind::Workload)
        {
            return Err(format!(
                "axes.optimized is only supported by the load_curve and workload stages, \
                 not {}",
                self.stage
            ));
        }
        if let Some(schedule) = &self.schedule {
            if schedule.warmup_cycles == 0 || schedule.measure_cycles == 0 {
                return Err("schedule windows must be positive".to_owned());
            }
        }
        if let Some(ns) = &self.faults.ns {
            if ns.is_empty() {
                return Err("faults.ns must not be empty".to_owned());
            }
            if let Some(&bad) = ns.iter().find(|&&n| n < 2) {
                return Err(format!("faults.ns value {bad} is below the simulation minimum 2"));
            }
        }
        if self.faults.link_failures.as_ref().is_some_and(Vec::is_empty) {
            return Err("faults.link_failures must not be empty".to_owned());
        }
        if self.faults.retransmit_timeout == Some(0) {
            return Err("`faults.retransmit_timeout` must be at least 1".to_owned());
        }
        if self.observe.sample_every == Some(0) {
            return Err("`observe.sample_every` must be at least 1".to_owned());
        }
        if self.observe.sample_every.is_some() && !self.observe.wants_probe() {
            return Err("`observe.sample_every` is set but neither `observe.timeline` nor \
                 `observe.heatmap` is enabled"
                .to_owned());
        }
        if self.observe.wants_probe() && self.stage != StageKind::LoadCurve {
            return Err(format!(
                "`observe.timeline` / `observe.heatmap` replay load points and are only \
                 supported by the load_curve stage, not {}",
                self.stage
            ));
        }
        if self.sim.shards == Some(0) {
            return Err("`sim.shards` must be at least 1".to_owned());
        }
        if self.router.crossbar_depth.is_some_and(|d| d > 16) {
            return Err("`router.crossbar_depth` must be at most 16".to_owned());
        }
        if self.sim.router.is_some() && !self.router.is_neutral() {
            return Err(
                "`sim.router` (a named model) and `[router]` (field overrides) are mutually \
                 exclusive"
                    .to_owned(),
            );
        }
        if self.axes.routers.is_some()
            && (self.sim.router.is_some() || !self.router.is_neutral())
        {
            return Err(
                "`axes.routers` sweeps router models — it cannot be combined with a fixed \
                 `sim.router` / `[router]` override"
                    .to_owned(),
            );
        }
        if self.sim.shards.is_some() && self.stage == StageKind::Workload {
            return Err(
                "`sim.shards` is not supported by the workload stage (its closed-loop \
                 driver runs serial)"
                    .to_owned(),
            );
        }
        self.reject_settings_the_stage_ignores()
    }

    /// A set axis or section the running stage would not read is an
    /// error, not a no-op: silently ignoring it runs a different
    /// experiment than the spec describes, and the manifest's spec echo
    /// would then document the ignored values as applied configuration.
    fn reject_settings_the_stage_ignores(&self) -> Result<(), String> {
        use StageKind::Router as Rt;
        use StageKind::Workload as Wl;
        use StageKind::{
            Kite, LoadCurve, Proxies, Resilience, Saturation, Search, Thermal, Traffic,
        };
        let stage = self.stage;
        // `search` settings also drive the `optimized` axis.
        let searches = stage == Search || self.axes.optimized;
        let checks: [(&str, bool, bool); 11] = [
            (
                "axes.kinds",
                self.axes.kinds.is_some(),
                matches!(
                    stage,
                    Proxies | Saturation | Traffic | LoadCurve | Wl | Thermal | Resilience | Rt
                ),
            ),
            ("axes.rates", self.axes.rates.is_some(), stage == LoadCurve),
            (
                "axes.patterns",
                self.axes.patterns.is_some(),
                matches!(stage, Saturation | Traffic | LoadCurve),
            ),
            ("axes.workloads", self.axes.workloads.is_some(), matches!(stage, Wl | Rt)),
            ("axes.routers", self.axes.routers.is_some(), stage == Rt),
            (
                "[sim]",
                !self.sim.is_neutral(),
                matches!(stage, Saturation | Traffic | LoadCurve | Wl | Resilience | Rt),
            ),
            (
                "[router]",
                !self.router.is_neutral(),
                matches!(stage, Saturation | Traffic | LoadCurve | Wl | Resilience | Rt),
            ),
            (
                "[schedule]",
                self.schedule.is_some(),
                matches!(
                    stage,
                    Saturation | Traffic | LoadCurve | Search | Kite | Resilience | Rt
                ),
            ),
            ("[search]", self.search != SearchOverrides::default(), searches),
            (
                "[saturation]",
                self.saturation != SaturationOverrides::default(),
                stage == Saturation,
            ),
            ("[faults]", self.faults != FaultsSpec::default(), stage == Resilience),
        ];
        for (key, set, applicable) in checks {
            if set && !applicable {
                return Err(format!("`{key}` is set but the {stage} stage does not use it"));
            }
        }
        if self.workload != WorkloadOverrides::default() && stage != Wl {
            return Err(format!("`[workload]` is set but the {stage} stage does not use it"));
        }
        Ok(())
    }
}

/// Inserts `section` into `root` only when non-empty, keeping the
/// serialized form minimal.
fn set_section(root: &mut Value, key: &str, section: Value) {
    if !matches!(&section, Value::Obj(entries) if entries.is_empty()) {
        root.set(key, section);
    }
}

// ── strict field decoders ───────────────────────────────────────────────

fn str_field<'a>(obj: &'a Value, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(other) => Err(format!("`{key}` must be a string, got {other:?}")),
    }
}

fn u64_field(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Int(i)) => u64::try_from(*i)
            .map(Some)
            .map_err(|_| format!("`{key}` must be a non-negative integer")),
        Some(other) => Err(format!("`{key}` must be an integer, got {other:?}")),
    }
}

fn usize_field(obj: &Value, key: &str) -> Result<Option<usize>, String> {
    Ok(u64_field(obj, key)?.map(|v| v as usize))
}

fn bool_field(obj: &Value, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("`{key}` must be a boolean, got {other:?}")),
    }
}

fn f64_field(obj: &Value, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Num(x)) => Ok(Some(*x)),
        Some(Value::Int(i)) => Ok(Some(*i as f64)),
        Some(other) => Err(format!("`{key}` must be a number, got {other:?}")),
    }
}

fn list_field<T, F>(obj: &Value, key: &str, decode: F) -> Result<Option<Vec<T>>, String>
where
    F: Fn(&Value) -> Result<T, String>,
{
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|item| decode(item).map_err(|e| format!("`{key}`: {e}")))
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
        Some(other) => Err(format!("`{key}` must be an array, got {other:?}")),
    }
}

fn parse_name<T>(item: &Value) -> Result<T, String>
where
    T: FromStr,
    T::Err: std::fmt::Display,
{
    match item {
        Value::Str(s) => s.parse().map_err(|e| format!("{e}")),
        other => Err(format!("expected a name string, got {other:?}")),
    }
}

fn reject_duplicate_keys(entries: &[(String, Value)], context: &str) -> Result<(), String> {
    for (i, (key, _)) in entries.iter().enumerate() {
        if entries[..i].iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate key {key:?} in `{context}`"));
        }
    }
    Ok(())
}

fn reject_unknown(section: &Value, known: &[&str], context: &str) -> Result<(), String> {
    let Value::Obj(entries) = section else {
        return Err(format!("`{context}` must be a table/object"));
    };
    reject_duplicate_keys(entries, context)?;
    for (key, _) in entries {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?} in `{context}`"));
        }
    }
    Ok(())
}

fn decode_axes(section: &Value) -> Result<Axes, String> {
    reject_unknown(
        section,
        &["kinds", "ns", "rates", "patterns", "workloads", "routers", "optimized"],
        "axes",
    )?;
    Ok(Axes {
        kinds: list_field(section, "kinds", parse_name::<ArrangementKind>)?,
        ns: list_field(section, "ns", |v| match v {
            Value::Int(i) => {
                usize::try_from(*i).map_err(|_| "negative chiplet count".to_owned())
            }
            other => Err(format!("expected an integer, got {other:?}")),
        })?,
        rates: list_field(section, "rates", |v| match v {
            Value::Num(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected a number, got {other:?}")),
        })?,
        patterns: list_field(section, "patterns", parse_name::<TrafficPattern>)?,
        workloads: list_field(section, "workloads", parse_name::<WorkloadKind>)?,
        routers: list_field(section, "routers", parse_name::<RouterModelKind>)?,
        optimized: bool_field(section, "optimized")?.unwrap_or(false),
    })
}

fn decode_sim(section: &Value) -> Result<SimOverrides, String> {
    reject_unknown(section, &["routing", "vcs", "buffer_depth", "shards", "router"], "sim")?;
    Ok(SimOverrides {
        routing: str_field(section, "routing")?.map(str::parse).transpose()?,
        vcs: usize_field(section, "vcs")?,
        buffer_depth: usize_field(section, "buffer_depth")?,
        shards: usize_field(section, "shards")?,
        router: str_field(section, "router")?.map(str::parse).transpose()?,
    })
}

fn decode_router(section: &Value) -> Result<RouterSpec, String> {
    reject_unknown(section, &["vc_alloc", "output_arb", "bubble", "crossbar_depth"], "router")?;
    Ok(RouterSpec {
        vc_alloc: str_field(section, "vc_alloc")?.map(str::parse).transpose()?,
        output_arb: str_field(section, "output_arb")?.map(str::parse).transpose()?,
        bubble: bool_field(section, "bubble")?,
        crossbar_depth: u64_field(section, "crossbar_depth")?,
    })
}

fn decode_schedule(section: &Value) -> Result<Schedule, String> {
    reject_unknown(
        section,
        &["warmup_cycles", "measure_cycles", "rate_resolution"],
        "schedule",
    )?;
    let warmup =
        u64_field(section, "warmup_cycles")?.ok_or("`schedule` needs `warmup_cycles`")?;
    let measure =
        u64_field(section, "measure_cycles")?.ok_or("`schedule` needs `measure_cycles`")?;
    Ok(Schedule {
        warmup_cycles: warmup,
        measure_cycles: measure,
        rate_resolution: f64_field(section, "rate_resolution")?,
    })
}

fn decode_search(section: &Value) -> Result<SearchOverrides, String> {
    reject_unknown(section, &["restarts", "iterations", "validate"], "search")?;
    Ok(SearchOverrides {
        restarts: usize_field(section, "restarts")?,
        iterations: usize_field(section, "iterations")?,
        validate: bool_field(section, "validate")?.unwrap_or(true),
    })
}

fn decode_workload(section: &Value) -> Result<WorkloadOverrides, String> {
    reject_unknown(section, &["max_cycles", "traces"], "workload")?;
    Ok(WorkloadOverrides {
        max_cycles: u64_field(section, "max_cycles")?,
        traces: bool_field(section, "traces")?.unwrap_or(false),
    })
}

fn decode_saturation(section: &Value) -> Result<SaturationOverrides, String> {
    reject_unknown(section, &["fanout", "normalized_stem"], "saturation")?;
    Ok(SaturationOverrides {
        fanout: usize_field(section, "fanout")?,
        normalized_stem: str_field(section, "normalized_stem")?.map(str::to_owned),
    })
}

fn decode_faults(section: &Value) -> Result<FaultsSpec, String> {
    reject_unknown(
        section,
        &["ns", "link_failures", "fault_cycle", "retransmit_timeout"],
        "faults",
    )?;
    let counts = |key: &str| {
        list_field(section, key, |v| match v {
            Value::Int(i) => usize::try_from(*i).map_err(|_| "negative count".to_owned()),
            other => Err(format!("expected an integer, got {other:?}")),
        })
    };
    Ok(FaultsSpec {
        ns: counts("ns")?,
        link_failures: counts("link_failures")?,
        fault_cycle: u64_field(section, "fault_cycle")?,
        retransmit_timeout: u64_field(section, "retransmit_timeout")?,
    })
}

fn decode_observe(section: &Value) -> Result<ObserveSpec, String> {
    reject_unknown(section, &["sample_every", "heatmap", "timeline", "trace"], "observe")?;
    Ok(ObserveSpec {
        sample_every: u64_field(section, "sample_every")?,
        heatmap: bool_field(section, "heatmap")?.unwrap_or(false),
        timeline: bool_field(section, "timeline")?.unwrap_or(false),
        trace: bool_field(section, "trace")?.unwrap_or(false),
    })
}

fn decode_output(section: &Value) -> Result<OutputSpec, String> {
    reject_unknown(section, &["dir", "to_repo_root"], "output")?;
    Ok(OutputSpec {
        dir: str_field(section, "dir")?.map(str::to_owned),
        to_repo_root: bool_field(section, "to_repo_root")?.unwrap_or(false),
    })
}

fn decode_serve(section: &Value) -> Result<ServeSpec, String> {
    reject_unknown(section, &["mode", "warm_start"], "serve")?;
    Ok(ServeSpec {
        mode: str_field(section, "mode")?.map(str::parse).transpose()?.unwrap_or_default(),
        warm_start: bool_field(section, "warm_start")?.unwrap_or(true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in StageKind::ALL {
            assert_eq!(stage.name().parse::<StageKind>().unwrap(), stage);
            assert_eq!(stage.to_string().parse::<StageKind>().unwrap(), stage);
        }
        assert!("fig7".parse::<StageKind>().is_err());
    }

    #[test]
    fn minimal_spec_decodes_with_stage_defaults() {
        let spec = StudySpec::from_toml("name = \"s\"\nstage = \"load_curve\"\n").unwrap();
        assert_eq!(spec.name, "s");
        assert_eq!(spec.stage, StageKind::LoadCurve);
        assert_eq!(spec.axes, Axes::default());
        assert!(spec.search.validate);
    }

    #[test]
    fn full_spec_round_trips_through_value() {
        let mut spec = StudySpec::new("ranked", StageKind::Workload);
        spec.seed = Some(42);
        spec.replicates = Some(3);
        spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh, ArrangementKind::Grid]);
        spec.axes.ns = Some(vec![19, 37]);
        spec.axes.workloads = Some(vec![WorkloadKind::Stencil]);
        spec.axes.optimized = true;
        spec.sim.routing = Some(RoutingKind::UpDownOnly);
        spec.sim.vcs = Some(4);
        spec.search.restarts = Some(3);
        spec.workload.max_cycles = Some(1_000_000);
        spec.workload.traces = true;
        spec.output.to_repo_root = true;
        let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round_tripped, spec);
        // And through the JSON text form too.
        let via_json = StudySpec::from_json(&spec.to_value().to_json()).unwrap();
        assert_eq!(via_json, spec);
    }

    #[test]
    fn toml_spec_with_sections_decodes() {
        let spec = StudySpec::from_toml(concat!(
            "name = \"hotspot_curves\"\n",
            "stage = \"load_curve\"\n",
            "seed = 7\n",
            "[axes]\n",
            "kinds = [\"brickwall\", \"hexamesh\"]\n",
            "ns = [19]\n",
            "patterns = [\"hotspot:4:500\"]\n",
            "[sim]\n",
            "routing = \"updown\"\n",
            "[schedule]\n",
            "warmup_cycles = 1500\n",
            "measure_cycles = 3000\n",
        ))
        .unwrap();
        assert_eq!(spec.seed, Some(7));
        assert_eq!(
            spec.axes.patterns,
            Some(vec![TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 500 }])
        );
        assert_eq!(spec.sim.routing, Some(RoutingKind::UpDownOnly));
        assert_eq!(spec.schedule, Some(Schedule::new(1_500, 3_000)));
    }

    #[test]
    fn unknown_keys_and_bad_values_are_errors() {
        let base = "name = \"s\"\nstage = \"traffic\"\n";
        assert!(StudySpec::from_toml(&format!("{base}typo = 1\n")).is_err());
        assert!(StudySpec::from_toml(&format!("{base}[axes]\ntypo = 1\n")).is_err());
        assert!(
            StudySpec::from_toml(&format!("{base}[axes]\nkinds = [\"squircle\"]\n")).is_err()
        );
        assert!(StudySpec::from_toml(&format!("{base}[axes]\nns = [1]\n")).is_err());
        assert!(StudySpec::from_toml(&format!("{base}[axes]\nrates = [1.5]\n")).is_err());
        assert!(StudySpec::from_toml("stage = \"traffic\"\n").is_err(), "missing name");
        assert!(StudySpec::from_toml("name = \"s\"\n").is_err(), "missing stage");
        assert!(StudySpec::from_toml("name = \"a/b\"\nstage = \"traffic\"\n").is_err());
        assert!(StudySpec::from_toml(&format!("{base}replicates = 0\n")).is_err());
    }

    #[test]
    fn duplicate_json_keys_are_errors_not_first_or_last_wins() {
        let dup_scalar = r#"{"name":"s","stage":"traffic","seed":1,"seed":2}"#;
        assert!(StudySpec::from_json(dup_scalar).is_err());
        let dup_section =
            r#"{"name":"s","stage":"traffic","axes":{"ns":[4]},"axes":{"ns":[9]}}"#;
        assert!(StudySpec::from_json(dup_section).is_err());
        let dup_inner = r#"{"name":"s","stage":"traffic","axes":{"ns":[4],"ns":[9]}}"#;
        assert!(StudySpec::from_json(dup_inner).is_err());
    }

    #[test]
    fn settings_the_stage_ignores_are_rejected() {
        let mut spec = StudySpec::new("s", StageKind::Cost);
        spec.axes.rates = Some(vec![0.5]);
        assert!(spec.validate().is_err(), "cost stage reads no rates axis");
        let mut spec = StudySpec::new("s", StageKind::Cost);
        spec.sim.vcs = Some(2);
        assert!(spec.validate().is_err(), "cost stage runs no simulator");
        let mut spec = StudySpec::new("s", StageKind::Thermal);
        spec.schedule = Some(Schedule::new(100, 200));
        assert!(spec.validate().is_err(), "thermal stage has no measurement windows");
        let mut spec = StudySpec::new("s", StageKind::Traffic);
        spec.search.restarts = Some(2);
        assert!(spec.validate().is_err(), "search settings need the search stage or optimized");
        let mut spec = StudySpec::new("s", StageKind::LoadCurve);
        spec.saturation.fanout = Some(2);
        assert!(spec.validate().is_err(), "saturation settings are saturation-stage only");
        let mut spec = StudySpec::new("s", StageKind::Saturation);
        spec.workload.traces = true;
        assert!(spec.validate().is_err(), "workload settings are workload-stage only");
        // The same settings pass on the stages that read them.
        let mut spec = StudySpec::new("s", StageKind::LoadCurve);
        spec.axes.optimized = true;
        spec.search.restarts = Some(2);
        spec.sim.vcs = Some(2);
        spec.schedule = Some(Schedule::new(100, 200));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn sim_shards_round_trips_and_is_validated() {
        let mut spec = StudySpec::new("large", StageKind::Saturation);
        spec.axes.ns = Some(vec![1_027]);
        spec.sim.shards = Some(8);
        spec.validate().unwrap();
        let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round_tripped, spec);
        let via_json = StudySpec::from_json(&spec.to_value().to_json()).unwrap();
        assert_eq!(via_json, spec);

        let toml = StudySpec::from_toml(concat!(
            "name = \"large\"\nstage = \"saturation\"\n",
            "[sim]\nshards = 8\n",
        ))
        .unwrap();
        assert_eq!(toml.sim.shards, Some(8));

        let mut zero = StudySpec::new("s", StageKind::Saturation);
        zero.sim.shards = Some(0);
        assert!(zero.validate().is_err(), "shards = 0 is meaningless");
        let mut workload = StudySpec::new("s", StageKind::Workload);
        workload.sim.shards = Some(4);
        assert!(workload.validate().is_err(), "the closed-loop driver is serial-only");
    }

    #[test]
    fn faults_section_round_trips_and_is_validated() {
        let mut spec = StudySpec::new("degrade", StageKind::Resilience);
        spec.faults.ns = Some(vec![37, 91]);
        spec.faults.link_failures = Some(vec![0, 1, 2, 4]);
        spec.faults.fault_cycle = Some(750);
        spec.faults.retransmit_timeout = Some(512);
        spec.validate().unwrap();
        let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round_tripped, spec);
        let via_json = StudySpec::from_json(&spec.to_value().to_json()).unwrap();
        assert_eq!(via_json, spec);

        let toml = StudySpec::from_toml(concat!(
            "name = \"degrade\"\nstage = \"resilience\"\n",
            "[faults]\nlink_failures = [0, 2]\nfault_cycle = 600\n",
        ))
        .unwrap();
        assert_eq!(toml.faults.link_failures, Some(vec![0, 2]));
        assert_eq!(toml.faults.fault_cycle, Some(600));

        // Rejections: wrong stage, empty lists, degenerate values.
        let mut wrong_stage = StudySpec::new("s", StageKind::Saturation);
        wrong_stage.faults.link_failures = Some(vec![1]);
        assert!(wrong_stage.validate().is_err(), "[faults] is resilience-stage only");
        let mut empty = StudySpec::new("s", StageKind::Resilience);
        empty.faults.link_failures = Some(vec![]);
        assert!(empty.validate().is_err());
        let mut tiny = StudySpec::new("s", StageKind::Resilience);
        tiny.faults.ns = Some(vec![1]);
        assert!(tiny.validate().is_err());
        let mut zero = StudySpec::new("s", StageKind::Resilience);
        zero.faults.retransmit_timeout = Some(0);
        assert!(zero.validate().is_err());
        assert!(StudySpec::from_toml(
            "name = \"s\"\nstage = \"resilience\"\n[faults]\ntypo = 1\n"
        )
        .is_err());
    }

    #[test]
    fn observe_section_round_trips_and_is_validated() {
        let mut spec = StudySpec::new("watched", StageKind::LoadCurve);
        spec.observe.sample_every = Some(200);
        spec.observe.heatmap = true;
        spec.observe.timeline = true;
        spec.observe.trace = true;
        spec.validate().unwrap();
        let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round_tripped, spec);
        let via_json = StudySpec::from_json(&spec.to_value().to_json()).unwrap();
        assert_eq!(via_json, spec);

        let toml = StudySpec::from_toml(concat!(
            "name = \"watched\"\nstage = \"load_curve\"\n",
            "[observe]\ntimeline = true\nsample_every = 125\n",
        ))
        .unwrap();
        assert_eq!(toml.observe.sample_every, Some(125));
        assert!(toml.observe.timeline);
        assert!(!toml.observe.heatmap);

        // Rejections: zero window, orphan sample_every, wrong stage.
        let mut zero = StudySpec::new("s", StageKind::LoadCurve);
        zero.observe.sample_every = Some(0);
        zero.observe.timeline = true;
        assert!(zero.validate().is_err());
        let mut orphan = StudySpec::new("s", StageKind::LoadCurve);
        orphan.observe.sample_every = Some(100);
        assert!(orphan.validate().is_err(), "sample_every needs a probe consumer");
        let mut wrong_stage = StudySpec::new("s", StageKind::Saturation);
        wrong_stage.observe.heatmap = true;
        assert!(wrong_stage.validate().is_err(), "heatmap replays load_curve points");
        // Pool tracing is engine-level and works for any stage.
        let mut traced = StudySpec::new("s", StageKind::Saturation);
        traced.observe.trace = true;
        traced.validate().unwrap();
        assert!(StudySpec::from_toml(
            "name = \"s\"\nstage = \"load_curve\"\n[observe]\ntypo = 1\n"
        )
        .is_err());
    }

    #[test]
    fn serve_section_round_trips_and_is_stage_agnostic() {
        // `[serve]` is transport-level cache control: any stage carries it.
        for stage in StageKind::ALL {
            let mut spec = StudySpec::new("s", stage);
            spec.serve.mode = ServeMode::Refresh;
            spec.serve.warm_start = false;
            spec.validate().unwrap();
            let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(round_tripped, spec);
        }

        let toml = StudySpec::from_toml(concat!(
            "name = \"cached\"\nstage = \"load_curve\"\n",
            "[serve]\nmode = \"bypass\"\nwarm_start = false\n",
        ))
        .unwrap();
        assert_eq!(toml.serve.mode, ServeMode::Bypass);
        assert!(!toml.serve.warm_start);

        // Defaults vanish from the serialized form: the canonical value of
        // a default `[serve]` has no serve section at all, so writing the
        // defaults out explicitly cannot change a cache key.
        let explicit = StudySpec::from_toml(concat!(
            "name = \"cached\"\nstage = \"load_curve\"\n",
            "[serve]\nmode = \"reuse\"\nwarm_start = true\n",
        ))
        .unwrap();
        let implicit =
            StudySpec::from_toml("name = \"cached\"\nstage = \"load_curve\"\n").unwrap();
        assert_eq!(explicit.to_value().to_json(), implicit.to_value().to_json());
        assert!(explicit.to_value().get("serve").is_none());

        assert!(StudySpec::from_toml(
            "name = \"s\"\nstage = \"load_curve\"\n[serve]\nmode = \"always\"\n"
        )
        .is_err());
        assert!(StudySpec::from_toml(
            "name = \"s\"\nstage = \"load_curve\"\n[serve]\ntypo = 1\n"
        )
        .is_err());
    }

    #[test]
    fn router_section_round_trips_and_is_validated() {
        let mut spec = StudySpec::new("rmodel", StageKind::Router);
        spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh, ArrangementKind::Grid]);
        spec.router.vc_alloc = Some(VcAllocPolicy::LeastLoaded);
        spec.router.output_arb = Some(OutputArbPolicy::OldestFirst);
        spec.router.bubble = Some(true);
        spec.router.crossbar_depth = Some(2);
        spec.validate().unwrap();
        let round_tripped = StudySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round_tripped, spec);
        let via_json = StudySpec::from_json(&spec.to_value().to_json()).unwrap();
        assert_eq!(via_json, spec);

        let toml = StudySpec::from_toml(concat!(
            "name = \"rmodel\"\nstage = \"router\"\n",
            "[router]\nvc_alloc = \"random\"\nbubble = true\n",
        ))
        .unwrap();
        assert_eq!(toml.router.vc_alloc, Some(VcAllocPolicy::Random));
        assert_eq!(toml.router.bubble, Some(true));
        assert_eq!(toml.router.output_arb, None);
        assert_eq!(
            toml.router.apply(RouterModel::default()),
            RouterModel {
                vc_alloc: VcAllocPolicy::Random,
                bubble_escape: true,
                ..RouterModel::default()
            }
        );

        // Named models decode through `sim.router` and the axes sweep.
        let named = StudySpec::from_toml(concat!(
            "name = \"rmodel\"\nstage = \"router\"\n",
            "[sim]\nrouter = \"fortified\"\n",
        ))
        .unwrap();
        assert_eq!(named.sim.router, Some(RouterModelKind::Fortified));
        let swept = StudySpec::from_toml(concat!(
            "name = \"rmodel\"\nstage = \"router\"\n",
            "[axes]\nrouters = [\"baseline\", \"bubble\", \"deepxbar\"]\n",
        ))
        .unwrap();
        assert_eq!(
            swept.axes.routers,
            Some(vec![
                RouterModelKind::Baseline,
                RouterModelKind::Bubble,
                RouterModelKind::DeepCrossbar,
            ])
        );
    }

    #[test]
    fn router_settings_are_strictly_rejected() {
        // Unknown keys and unknown policy names.
        let base = "name = \"s\"\nstage = \"router\"\n";
        assert!(StudySpec::from_toml(&format!("{base}[router]\ntypo = 1\n")).is_err());
        assert!(StudySpec::from_toml(&format!("{base}[router]\nvc_alloc = \"lru\"\n")).is_err());
        assert!(StudySpec::from_toml(&format!("{base}[sim]\nrouter = \"default\"\n")).is_err());
        assert!(
            StudySpec::from_toml(&format!("{base}[axes]\nrouters = [\"turbo\"]\n")).is_err()
        );
        assert!(StudySpec::from_toml(&format!("{base}[axes]\nrouters = []\n")).is_err());
        // Out-of-range pipeline depth.
        assert!(
            StudySpec::from_toml(&format!("{base}[router]\ncrossbar_depth = 17\n")).is_err()
        );
        StudySpec::from_toml(&format!("{base}[router]\ncrossbar_depth = 16\n")).unwrap();
        // Contradictory combinations.
        let mut both = StudySpec::new("s", StageKind::Router);
        both.sim.router = Some(RouterModelKind::Bubble);
        both.router.bubble = Some(true);
        assert!(both.validate().is_err(), "named model vs field overrides");
        let mut sweep_and_fix = StudySpec::new("s", StageKind::Router);
        sweep_and_fix.axes.routers = Some(vec![RouterModelKind::Baseline]);
        sweep_and_fix.sim.router = Some(RouterModelKind::Bubble);
        assert!(sweep_and_fix.validate().is_err(), "sweep vs fixed override");
        // Stage gating: the proxies stage runs no simulator, and the
        // routers axis needs a stage that sweeps it.
        let mut wrong_stage = StudySpec::new("s", StageKind::Proxies);
        wrong_stage.router.bubble = Some(true);
        assert!(wrong_stage.validate().is_err(), "[router] needs a simulating stage");
        let mut wrong_axis = StudySpec::new("s", StageKind::Saturation);
        wrong_axis.axes.routers = Some(vec![RouterModelKind::Baseline]);
        assert!(wrong_axis.validate().is_err(), "axes.routers is router-stage only");
        // But a fixed override on a simulating stage is fine.
        let mut fixed = StudySpec::new("s", StageKind::Saturation);
        fixed.sim.router = Some(RouterModelKind::Fortified);
        fixed.validate().unwrap();
    }

    #[test]
    fn cross_field_constraints_are_enforced() {
        let mut spec = StudySpec::new("s", StageKind::Saturation);
        spec.axes.patterns = Some(vec![TrafficPattern::UniformRandom, TrafficPattern::Tornado]);
        assert!(spec.validate().is_err(), "saturation takes one pattern");
        let mut spec = StudySpec::new("s", StageKind::Traffic);
        spec.axes.optimized = true;
        assert!(spec.validate().is_err(), "optimized axis is load_curve/workload only");
        let mut spec = StudySpec::new("s", StageKind::Workload);
        spec.axes.optimized = true;
        assert!(spec.validate().is_ok());
    }
}
