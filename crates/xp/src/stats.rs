//! Replicate aggregation: mean, sample standard deviation, and a 95%
//! confidence half-width across `--seeds K` replicates.

/// Aggregate of one metric across replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of finite samples aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for a single
    /// sample).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval,
    /// `1.96 · std / √n` (0 for a single sample). For the small `K` this
    /// repo uses, treat it as a dispersion indicator rather than an exact
    /// interval.
    pub ci95: f64,
}

impl Summary {
    /// Aggregates the finite values in `samples`. Returns `None` when no
    /// finite sample remains (e.g. all replicates produced `NaN`).
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let n = finite.len();
        let mean = finite.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var =
                finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let ci95 = if n < 2 { 0.0 } else { 1.96 * std / (n as f64).sqrt() };
        Some(Self { count: n, mean, std, ci95 })
    }
}

/// Arithmetic mean, `None` for an empty slice. (Kept for the callers that
/// only need the mean.)
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

/// Replicate-mean of one metric over a chunk of results: extracts the
/// metric with `f`, aggregates with [`Summary::of`], and returns the mean
/// (`NaN` when no replicate produced a finite value). This is the one
/// aggregation the campaign binaries apply to each `--seeds K` chunk.
#[must_use]
pub fn mean_of<T>(chunk: &[T], f: impl Fn(&T) -> f64) -> f64 {
    let samples: Vec<f64> = chunk.iter().map(f).collect();
    Summary::of(&samples).map_or(f64::NAN, |s| s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        assert_eq!(Summary::of(&[]), None);
        assert_eq!(Summary::of(&[f64::NAN]), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_mean_std_ci() {
        // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample std ~2.138.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138_089_935).abs() < 1e-6, "std {}", s.std);
        let expect_ci = 1.96 * s.std / 8f64.sqrt();
        assert!((s.ci95 - expect_ci).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_are_dropped_not_poisonous() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_summary() {
        let v = [2.0, 4.0];
        assert_eq!(mean(&v), Some(Summary::of(&v).unwrap().mean));
    }

    #[test]
    fn mean_of_extracts_and_averages() {
        let chunk = [(1, 2.0), (1, 4.0)];
        assert!((mean_of(&chunk, |&(_, x)| x) - 3.0).abs() < 1e-12);
        assert!(mean_of(&chunk, |_| f64::NAN).is_nan());
    }
}
