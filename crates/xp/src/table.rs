//! Minimal CSV writing for experiment outputs (no external dependency).
//! This is the engine's CSV sink; `hexamesh_bench::csv` re-exports it for
//! the figure binaries.

use std::fmt::Display;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// A CSV table under construction.
///
/// # Example
///
/// ```
/// use xp::table::Table;
///
/// let mut t = Table::new(&["n", "diameter"]);
/// t.row(&[&4, &2]);
/// assert_eq!(t.to_csv(), "n,diameter\n4,2\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Appends a row; each cell is rendered with `Display`.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names, in order.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Rendered data rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV text (comma-separated, `\n` line ends).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
    }
}

/// Formats a float with 3 decimal places for CSV cells.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::new(&["a", "b"]);
        assert!(t.is_empty());
        t.row(&[&1, &"x"]);
        t.row(&[&2.5, &"y"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_csv(), "a,b\n1,x\n2.5,y\n");
        assert_eq!(t.header(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("xp_csv_test");
        let path = dir.join("t.csv");
        let mut t = Table::new(&["x"]);
        t.row(&[&42]);
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n42\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f3_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(2.0), "2.000");
    }
}
