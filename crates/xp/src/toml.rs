//! A minimal TOML reader for study specs.
//!
//! This environment vendors no TOML crate, so — like the JSON writer in
//! [`crate::json`] — the spec loader reads a well-defined TOML subset by
//! hand, producing the same [`Value`] model the JSON reader does (so
//! `study --spec file.toml` and `--spec file.json` share one decode
//! path). The subset covers everything a [`crate::spec::StudySpec`]
//! needs:
//!
//! * top-level `key = value` pairs and single-level `[section]` tables;
//! * basic strings (`"..."` with `\"`, `\\`, `\n`, `\r`, `\t` escapes)
//!   and literal strings (`'...'`, no escapes);
//! * integers, floats, booleans;
//! * single-line arrays of those scalars (`[1, 2, 3]`, trailing comma
//!   allowed);
//! * `#` comments and blank lines.
//!
//! Not supported (an explicit error, never a silent misread): nested or
//! dotted tables, arrays of tables, inline tables, multi-line strings,
//! and multi-line arrays. Duplicate keys and duplicate sections are
//! errors too — a spec that assigns twice is almost certainly a typo.

use crate::json::Value;

/// Parses the supported TOML subset into a [`Value::Obj`]: top-level keys
/// first, then one nested object per `[section]` in file order.
///
/// # Errors
///
/// Returns `"line N: <problem>"` for the first offending line.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Index into `root` of the table new keys go into; None = top level.
    let mut current: Option<usize> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated [section] header"))?
                .trim();
            if name.is_empty() || name.starts_with('[') {
                return Err(format!(
                    "line {lineno}: arrays of tables and empty section names are not supported"
                ));
            }
            if name.contains('.') {
                return Err(format!(
                    "line {lineno}: dotted section {name:?} is not supported (one level only)"
                ));
            }
            if root.iter().any(|(k, _)| k == name) {
                return Err(format!("line {lineno}: duplicate section [{name}]"));
            }
            root.push((name.to_owned(), Value::object()));
            current = Some(root.len() - 1);
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value` or `[section]`"))?;
        let key = key.trim();
        if key.is_empty()
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {lineno}: bad key {key:?} (bare keys only)"));
        }
        let value = parse_scalar_or_array(value_text.trim(), lineno)?;
        let table = match current {
            Some(i) => &mut root[i].1,
            None => {
                // Top-level keys live directly in `root`; fabricate a
                // temporary object API by pushing below.
                if root.iter().any(|(k, _)| k == key) {
                    return Err(format!("line {lineno}: duplicate key {key:?}"));
                }
                root.push((key.to_owned(), value));
                continue;
            }
        };
        let Value::Obj(entries) = table else { unreachable!("sections are objects") };
        if entries.iter().any(|(k, _)| k == key) {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
        entries.push((key.to_owned(), value));
    }
    Ok(Value::Obj(root))
}

/// Strips a `#` comment, respecting `"` / `'` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar_or_array(text: &str, lineno: usize) -> Result<Value, String> {
    if text.is_empty() {
        return Err(format!("line {lineno}: missing value"));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: arrays must close on the same line"))?;
        let mut items = Vec::new();
        for element in split_array(body, lineno)? {
            items.push(parse_scalar(&element, lineno)?);
        }
        return Ok(Value::Arr(items));
    }
    parse_scalar(text, lineno)
}

/// Splits an array body on commas outside strings. Returns trimmed,
/// non-empty element texts (a trailing comma is allowed).
fn split_array(body: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut elements = Vec::new();
    let mut depth_guard = false;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth_guard = true,
            ',' if !in_basic && !in_literal => {
                elements.push(body[start..i].trim().to_owned());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth_guard {
        return Err(format!("line {lineno}: nested arrays / inline tables are not supported"));
    }
    let tail = body[start..].trim();
    if !tail.is_empty() {
        elements.push(tail.to_owned());
    }
    if elements.iter().any(String::is_empty) {
        return Err(format!("line {lineno}: empty array element"));
    }
    Ok(elements)
}

fn parse_scalar(text: &str, lineno: usize) -> Result<Value, String> {
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .filter(|_| text.len() >= 2)
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        let mut out = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(format!("line {lineno}: unsupported escape \\{other:?}"));
                }
            }
        }
        return Ok(Value::Str(out));
    }
    if let Some(body) = text.strip_prefix('\'') {
        let body = body
            .strip_suffix('\'')
            .filter(|_| text.len() >= 2)
            .ok_or_else(|| format!("line {lineno}: unterminated literal string"))?;
        return Ok(Value::Str(body.to_owned()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = text.replace('_', "");
    if let Ok(i) = digits.parse::<i128>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = digits.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::Num(x));
        }
    }
    Err(format!(
        "line {lineno}: unsupported value {text:?} (expected string, number, bool, or array)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(concat!(
            "# a study\n",
            "name = \"fig7\"   # trailing comment\n",
            "seed = 42\n",
            "threshold = 0.95\n",
            "quick = true\n",
            "\n",
            "[axes]\n",
            "ns = [2, 9, 16,]\n",
            "kinds = [\"grid\", 'hexamesh']\n",
            "rates = [0.04, 0.08]\n",
        ))
        .unwrap();
        assert_eq!(doc.get("name"), Some(&Value::Str("fig7".to_owned())));
        assert_eq!(doc.get("seed"), Some(&Value::Int(42)));
        assert_eq!(doc.get("threshold"), Some(&Value::Num(0.95)));
        assert_eq!(doc.get("quick"), Some(&Value::Bool(true)));
        let axes = doc.get("axes").unwrap();
        assert_eq!(
            axes.get("ns"),
            Some(&Value::Arr(vec![Value::Int(2), Value::Int(9), Value::Int(16)]))
        );
        assert_eq!(
            axes.get("kinds"),
            Some(&Value::Arr(vec![
                Value::Str("grid".to_owned()),
                Value::Str("hexamesh".to_owned())
            ]))
        );
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let doc = parse("label = \"a # b\"\n").unwrap();
        assert_eq!(doc.get("label"), Some(&Value::Str("a # b".to_owned())));
    }

    #[test]
    fn string_escapes_decode() {
        let doc = parse("s = \"a\\\"b\\\\c\\nd\"\n").unwrap();
        assert_eq!(doc.get("s"), Some(&Value::Str("a\"b\\c\nd".to_owned())));
    }

    #[test]
    fn unsupported_constructs_are_errors_not_misreads() {
        assert!(parse("[a.b]\nk = 1\n").is_err(), "dotted tables");
        assert!(parse("[[rows]]\nk = 1\n").is_err(), "arrays of tables");
        assert!(parse("k = [[1, 2]]\n").is_err(), "nested arrays");
        assert!(parse("k = { a = 1 }\n").is_err(), "inline tables");
        assert!(parse("k = [1,\n2]\n").is_err(), "multi-line arrays");
        assert!(parse("k = \"open\n").is_err(), "unterminated string");
        assert!(parse("k = 1\nk = 2\n").is_err(), "duplicate keys");
        assert!(parse("[s]\nk = 1\n[s]\n").is_err(), "duplicate sections");
        assert!(parse("just a line\n").is_err(), "missing =");
        assert!(parse("k = nope\n").is_err(), "bare words");
    }

    #[test]
    fn underscored_numbers_parse() {
        let doc = parse("cycles = 50_000_000\n").unwrap();
        assert_eq!(doc.get("cycles"), Some(&Value::Int(50_000_000)));
    }
}
