//! The engine's headline guarantee: a campaign's result rows are identical
//! for any `--workers` value — including when the jobs are real
//! cycle-accurate simulations — because job seeds derive from coordinates
//! and results return in grid order.

use chiplet_workload::{WorkloadDriver, WorkloadKind};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use nocsim::{SimConfig, Simulator};
use xp::cli::{CampaignArgs, OutputFormat};
use xp::grid::Scenario;
use xp::Campaign;

fn args(workers: usize, seeds: u64) -> CampaignArgs {
    CampaignArgs {
        workers,
        seeds,
        quick: true,
        full: false,
        out: std::env::temp_dir().join("xp_determinism"),
        format: OutputFormat::Csv,
        campaign_seed: 0xD2D_11CC,
        progress: false,
    }
}

/// Runs a small real-simulation campaign and returns its rows.
fn simulate_campaign(workers: usize, seeds: u64) -> Vec<(String, usize, u64, u64, String)> {
    let scenario =
        Scenario::new(&ArrangementKind::EVALUATED, &[2, 4, 7]).with_rates(&[0.05, 0.2]);
    let campaign = Campaign::new("determinism", args(workers, seeds));
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("builds");
        let config = SimConfig {
            injection_rate: job.rate.expect("rate axis set"),
            seed: job.seed,
            vcs: 4,
            buffer_depth: 4,
            ..SimConfig::paper_defaults()
        };
        let mut sim = Simulator::new(arrangement.graph(), config).expect("valid");
        let stats = sim.run_to_window(300, 1_200);
        (stats.received_flits, stats.offered_packets)
    });
    results
        .into_iter()
        .map(|(job, (flits, offered))| {
            (
                job.kind.label().to_owned(),
                job.n,
                job.replicate,
                flits,
                // Rate formatted to survive float equality concerns in the
                // row comparison.
                format!("{:.3}|{offered}", job.rate.unwrap()),
            )
        })
        .collect()
}

#[test]
fn rows_identical_for_any_worker_count() {
    let one = simulate_campaign(1, 1);
    let eight = simulate_campaign(8, 1);
    assert_eq!(one, eight);
}

#[test]
fn rows_identical_for_any_worker_count_with_replicates() {
    let mut one = simulate_campaign(1, 3);
    let mut eight = simulate_campaign(8, 3);
    assert_eq!(one, eight, "grid order must already match");
    // And after sorting (the acceptance criterion's framing).
    one.sort();
    eight.sort();
    assert_eq!(one, eight);
}

/// Runs a closed-loop workload campaign (the `workload_comparison`
/// shape) and returns its makespan/completion rows.
fn workload_campaign(workers: usize) -> Vec<(String, String, u64, u64)> {
    let scenario = Scenario::new(&ArrangementKind::ALL, &[7])
        .with_workloads(&[WorkloadKind::RingAllReduce, WorkloadKind::Stencil]);
    let campaign = Campaign::new("workload_determinism", args(workers, 1));
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("builds");
        let config = SimConfig { seed: job.seed, ..SimConfig::paper_defaults() };
        let workload = job.workload.expect("workload axis set").build(job.n * 2);
        let mut driver =
            WorkloadDriver::new(arrangement.graph(), config, &workload).expect("valid");
        let stats = driver.run(10_000_000);
        assert!(stats.completed);
        (stats.makespan, stats.delivered_flits)
    });
    results
        .into_iter()
        .map(|(job, (makespan, flits))| {
            (
                job.kind.label().to_owned(),
                job.workload.expect("set").label().to_owned(),
                makespan,
                flits,
            )
        })
        .collect()
}

#[test]
fn workload_rows_identical_for_any_worker_count() {
    let one = workload_campaign(1);
    let eight = workload_campaign(8);
    assert_eq!(one, eight, "workload makespan rows must not depend on --workers");
}

#[test]
fn replicates_differ_but_are_reproducible() {
    let rows = simulate_campaign(4, 2);
    // Replicates of the same point use different seeds, so their traffic
    // differs...
    let r0: Vec<_> = rows.iter().filter(|r| r.2 == 0).collect();
    let r1: Vec<_> = rows.iter().filter(|r| r.2 == 1).collect();
    assert_eq!(r0.len(), r1.len());
    assert_ne!(r0, r1, "replicate seeds must vary the measured traffic");
    // ...while the whole campaign is reproducible run to run.
    assert_eq!(rows, simulate_campaign(4, 2));
}
