//! Canonical-hash property battery for the serving layer.
//!
//! The content-addressed cache key (`Server::cache_key`) must be a
//! function of the *resolved* spec, not of how the request was spelled:
//! JSON vs TOML encodings, object-key order, and explicitly-written-out
//! defaults all land on the same key, while any semantic change — one
//! axis value, one override — lands on a different one. These tests pin
//! that contract with randomised specs.

use proptest::prelude::*;
use xp::cli::CampaignArgs;
use xp::json::Value;
use xp::serve::ServeConfig;
use xp::spec::{ServeMode, StageKind, StudySpec};
use xp::Server;

const KINDS: [&str; 4] = ["grid", "honeycomb", "brickwall", "hexamesh"];
const PATTERNS: [&str; 3] = ["uniform", "complement", "bitrev"];

fn test_args() -> CampaignArgs {
    CampaignArgs::try_parse(&["hash_canonical".to_owned()]).expect("empty argv parses")
}

fn server(dir: &std::path::Path) -> Server<'static> {
    let config = ServeConfig { args: test_args(), version: "test-version".to_owned() };
    Server::new(dir, config, xp::StageHooks::default())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xp_hash_canonical_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A load-curve spec assembled from drawn axis values.
fn curve_spec(
    kind_bits: u8,
    ns: &[usize],
    rate_steps: &[u32],
    pattern_bits: u8,
    seed: Option<u64>,
    replicates: Option<u64>,
) -> StudySpec {
    let mut spec = StudySpec::new("prop", StageKind::LoadCurve);
    let kinds: Vec<_> = KINDS
        .iter()
        .enumerate()
        .filter(|&(i, _)| kind_bits & (1 << i) != 0)
        .map(|(_, k)| k.parse().expect("kind name parses"))
        .collect();
    if !kinds.is_empty() {
        spec.axes.kinds = Some(kinds);
    }
    if !ns.is_empty() {
        spec.axes.ns = Some(ns.to_vec());
    }
    if !rate_steps.is_empty() {
        spec.axes.rates = Some(rate_steps.iter().map(|&k| f64::from(k) * 0.02).collect());
    }
    let patterns: Vec<_> = PATTERNS
        .iter()
        .enumerate()
        .filter(|&(i, _)| pattern_bits & (1 << i) != 0)
        .map(|(_, p)| p.parse().expect("pattern name parses"))
        .collect();
    if !patterns.is_empty() {
        spec.axes.patterns = Some(patterns);
    }
    spec.seed = seed;
    spec.replicates = replicates;
    spec
}

/// Rebuilds `value` with every object's keys in reverse order,
/// recursively — same content, maximally different spelling.
fn reverse_keys(value: &Value) -> Value {
    match value {
        Value::Obj(pairs) => {
            Value::Obj(pairs.iter().rev().map(|(k, v)| (k.clone(), reverse_keys(v))).collect())
        }
        Value::Arr(items) => Value::Arr(items.iter().map(reverse_keys).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A spec's key survives a JSON round-trip, a key-order shuffle, and
    /// writing the canonical form (explicit defaults) out in full.
    #[test]
    fn key_is_invariant_under_respelling(
        kind_bits in 0u8..16,
        ns in proptest::collection::vec(2usize..40, 0..3),
        rate_steps in proptest::collection::vec(1u32..26, 0..3),
        pattern_bits in 0u8..8,
        seed in 0u64..1_000,
        seed_set in proptest::bool::Any,
        replicates in 1u64..4,
        replicates_set in proptest::bool::Any,
    ) {
        let dir = temp_dir("respell");
        let server = server(&dir);
        let spec = curve_spec(
            kind_bits,
            &ns,
            &rate_steps,
            pattern_bits,
            seed_set.then_some(seed),
            replicates_set.then_some(replicates),
        );
        let (key, canonical) = server.cache_key(&spec);

        // JSON round-trip.
        let json = spec.to_value().to_json();
        let reparsed = StudySpec::from_json(&json).expect("spec JSON reparses");
        prop_assert_eq!(&server.cache_key(&reparsed).0, &key);

        // Object-key order is spelling, not meaning.
        let shuffled = StudySpec::from_value(&reverse_keys(&spec.to_value()))
            .expect("shuffled spec decodes");
        prop_assert_eq!(&server.cache_key(&shuffled).0, &key);

        // The fully-explicit canonical form (all defaults written out)
        // hashes identically to the sparse spelling.
        prop_assert_eq!(&server.cache_key(&canonical).0, &key);

        // Canonicalisation is idempotent.
        let (key2, canonical2) = server.cache_key(&canonical);
        prop_assert_eq!(&key2, &key);
        prop_assert_eq!(canonical2.to_value().to_json(), canonical.to_value().to_json());
    }

    /// Any semantic change — one axis value, the seed, a replicate
    /// count, an overridden simulator knob — changes the key.
    #[test]
    fn semantic_changes_change_the_key(
        kind_bits in 0u8..16,
        ns in proptest::collection::vec(2usize..40, 0..3),
        rate_steps in proptest::collection::vec(1u32..26, 0..3),
        pattern_bits in 0u8..8,
        mutation in 0usize..6,
    ) {
        let dir = temp_dir("mutate");
        let server = server(&dir);
        let spec = curve_spec(kind_bits, &ns, &rate_steps, pattern_bits, None, None);
        let (key, _) = server.cache_key(&spec);

        let mut mutated = spec.clone();
        match mutation {
            0 => {
                let mut ns = mutated.axes.ns.unwrap_or_default();
                ns.push(997);
                mutated.axes.ns = Some(ns);
            }
            1 => {
                let mut rates = mutated.axes.rates.unwrap_or_default();
                rates.push(0.979);
                mutated.axes.rates = Some(rates);
            }
            2 => mutated.seed = Some(test_args().campaign_seed + 1),
            3 => mutated.replicates = Some(test_args().seeds + 1),
            4 => mutated.axes.optimized = true,
            _ => mutated.sim.vcs = Some(7),
        }
        prop_assert_ne!(server.cache_key(&mutated).0, key);
    }
}

/// TOML and JSON encodings of the same spec hash identically, and the
/// fully-spelled-out TOML (defaults explicit, sections reordered) lands
/// on the same key as the sparse one.
#[test]
fn toml_and_json_spellings_hash_identically() {
    let dir = temp_dir("spellings");
    let server = server(&dir);

    let sparse_toml = r#"
        name = "spell"
        stage = "load_curve"

        [axes]
        kinds = ["hexamesh", "grid"]
        ns = [7, 13]
        rates = [0.1, 0.2]
    "#;
    let sparse = StudySpec::from_toml(sparse_toml).expect("sparse TOML parses");
    let (key, canonical) = server.cache_key(&sparse);

    let json = sparse.to_value().to_json();
    let from_json = StudySpec::from_json(&json).expect("JSON parses");
    assert_eq!(server.cache_key(&from_json).0, key);

    // Same spec with sections reordered and the serving defaults (which
    // never reach the key material) written out explicitly.
    let explicit_toml = r#"
        stage = "load_curve"
        name = "spell"

        [serve]
        mode = "reuse"
        warm_start = true

        [axes]
        rates = [0.1, 0.2]
        ns = [7, 13]
        patterns = ["uniform"]
        kinds = ["hexamesh", "grid"]
    "#;
    let explicit = StudySpec::from_toml(explicit_toml).expect("explicit TOML parses");
    assert_eq!(server.cache_key(&explicit).0, key);

    // And the canonical (resolved) spec round-trips through its own
    // JSON spelling onto the same key.
    let reparsed =
        StudySpec::from_json(&canonical.to_value().to_json()).expect("canonical reparses");
    assert_eq!(server.cache_key(&reparsed).0, key);
}

/// The `[serve]` and `[output]` sections steer delivery, not results:
/// they are erased before hashing, so every spelling of them shares one
/// cache entry.
#[test]
fn serve_and_output_sections_do_not_affect_the_key() {
    let dir = temp_dir("serve_section");
    let server = server(&dir);
    let base = curve_spec(0b1000, &[7], &[5], 0b001, Some(3), Some(2));
    let (key, _) = server.cache_key(&base);

    let mut refresh = base.clone();
    refresh.serve.mode = ServeMode::Refresh;
    refresh.serve.warm_start = false;
    assert_eq!(server.cache_key(&refresh).0, key);

    let mut routed = base.clone();
    routed.output.dir = Some("elsewhere".to_owned());
    assert_eq!(server.cache_key(&routed).0, key);
}

/// The engine version and schedule tier are key material: a new build
/// or a different tier never serves the old bytes.
#[test]
fn version_and_tier_are_key_material() {
    let dir = temp_dir("version");
    let base = curve_spec(0b1000, &[7], &[5], 0b001, None, None);

    let key = server(&dir).cache_key(&base).0;

    let bumped = Server::new(
        &dir,
        ServeConfig { args: test_args(), version: "test-version-2".to_owned() },
        xp::StageHooks::default(),
    );
    assert_ne!(bumped.cache_key(&base).0, key);

    let mut quick_args = test_args();
    quick_args.quick = true;
    let quick = Server::new(
        &dir,
        ServeConfig { args: quick_args, version: "test-version".to_owned() },
        xp::StageHooks::default(),
    );
    assert_ne!(quick.cache_key(&base).0, key);
}
