//! Drive the arrangement search programmatically: optimize a placement
//! for a chiplet count, inspect every restart's outcome, and compare the
//! winner against the fixed HexaMesh arrangement.
//!
//! Run with `cargo run --release --example arrange_search [N]`.

use hexamesh_repro::arrange::{full_score, search, SearchConfig, SearchState};
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};

fn main() {
    let n: usize =
        std::env::args().nth(1).map_or(43, |s| s.parse().expect("N must be a count"));
    let mut config = SearchConfig::new(n);
    config.workers =
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);

    let outcome = search(&config).expect("n >= 2");
    println!("search over {n} chiplets, {} restarts:", config.restarts);
    for c in &outcome.candidates {
        println!(
            "  restart {} ({:<9}) value {:.3}  avg {:.3}  diam {:>2}  cut {:>2}  \
             [{} proposed / {} accepted / {} improved]",
            c.restart,
            c.init.label(),
            c.score.value,
            c.score.avg_distance,
            c.score.diameter,
            c.score.bisection_cut,
            c.stats.proposed,
            c.stats.accepted,
            c.stats.improved,
        );
    }

    let best = outcome.best();
    // Score fixed HexaMesh through the same canonicalised-state path the
    // search uses, so the comparison is exact (the bisection heuristic
    // sees the same vertex labelling), as `arrangement_search` does.
    let hm = Arrangement::build(ArrangementKind::HexaMesh, n).expect("any n builds");
    let hm_graph = SearchState::from_placement(hm.placement().expect("rectangular"))
        .expect("valid state")
        .canonical()
        .graph();
    let hm_score =
        full_score(&hm_graph, &config.weights, &config.bisection).expect("connected");
    println!(
        "optimized: value {:.3} (from the {} seed) vs fixed HexaMesh {:.3} — {}",
        best.score.value,
        best.init.label(),
        hm_score.value,
        if best.score.value < hm_score.value {
            "the search found a better arrangement"
        } else {
            "the search confirms HexaMesh"
        }
    );
}
