//! Cost *and* performance in one view — the combination §VII of the paper
//! proposes: Chiplet-Actuary-style recurring cost next to the ICI proxies,
//! across chiplet counts at the paper's 800 mm² design point.
//!
//! Run with: `cargo run --release --example cost_vs_performance`

use hexamesh_repro::cost::system::{system_cost_comparison, CostParams};
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::eval::{link_budget, EvalParams};
use hexamesh_repro::hexamesh::proxies;
use hexamesh_repro::partition::BisectionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost_params = CostParams::default_5nm();
    let eval_params = EvalParams::paper_defaults();
    let bisection_config = BisectionConfig::default();
    let total_area = eval_params.total_area_mm2;

    println!("HexaMesh cost/performance trade-off at {total_area} mm² total silicon\n");
    println!(
        "{:>4}  {:>9} {:>8}  {:>9} {:>10}  {:>13}",
        "N", "mcm [$]", "vs mono", "diameter", "bisection", "link [Gb/s]"
    );
    for n in [7usize, 19, 37, 61, 91] {
        let cmp = system_cost_comparison(&cost_params, total_area, n)?;
        let hm = Arrangement::build(ArrangementKind::HexaMesh, n)?;
        let budget = link_budget(&hm, &eval_params)?;
        println!(
            "{:>4}  {:>9.0} {:>7.2}x  {:>9} {:>10.1}  {:>13.0}",
            n,
            cmp.mcm_total,
            cmp.monolithic_over_mcm(),
            proxies::measured_diameter(&hm).expect("connected"),
            proxies::paper_bisection(&hm, &bisection_config),
            budget.estimate.bandwidth_gbps(),
        );
    }

    println!(
        "\nReading: cost falls then rises with N (yield vs. assembly overheads) while \
         diameter grows ~ sqrt(N); per-link bandwidth shrinks as bump area divides."
    );
    Ok(())
}
