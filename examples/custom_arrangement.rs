//! Evaluate a hand-designed chiplet placement through the same pipeline the
//! built-in arrangements use: build a `Placement` from raw rectangles,
//! extract its ICI graph, surround it with I/O chiplets (Fig. 2), and
//! measure its proxies — useful when a product's floorplan is constrained
//! in ways the canonical arrangements cannot capture.
//!
//! Run with: `cargo run --release --example custom_arrangement`

use hexamesh_repro::graph::metrics;
use hexamesh_repro::layout::perimeter::surround_with_io;
use hexamesh_repro::layout::{PlacedChiplet, Placement, Rect};
use hexamesh_repro::partition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A plus-shaped arrangement of 2x2 compute chiplets: a centre block with
    // four arms (the kind of floorplan a memory-ringed accelerator might
    // use).
    let mut placement = Placement::new();
    let arm = [(2, 0), (0, 2), (2, 2), (4, 2), (2, 4), (0, 4), (4, 0), (0, 0), (4, 4)];
    for &(x, y) in &arm {
        placement.push(PlacedChiplet::compute(Rect::new(x, y, 2, 2)?))?;
    }

    let graph = placement.compute_adjacency_graph();
    println!("custom plus-shaped arrangement:");
    println!("  chiplets:        {}", placement.compute_count());
    println!("  D2D links:       {}", graph.num_edges());
    println!("  connected:       {}", metrics::is_connected(&graph));
    println!("  diameter:        {:?}", metrics::diameter(&graph));
    let stats = metrics::degree_stats(&graph).expect("non-empty");
    println!(
        "  neighbours:      min {} / max {} / avg {:.2}",
        stats.min, stats.max, stats.average
    );
    println!("  bisection width: {:?}", partition::bisection_width(&graph).expect("non-empty"));
    println!("  planar bound ok: {}", metrics::satisfies_planar_edge_bound(&graph));

    // Fig. 2: I/O chiplets ring the compute arrangement on the perimeter.
    let with_io = surround_with_io(&placement, 2, 2)?;
    println!(
        "  with perimeter I/O ring: {} chiplets total ({} I/O)",
        with_io.len(),
        with_io.len() - with_io.compute_count()
    );
    // The compute ICI is unchanged by the I/O ring.
    assert_eq!(with_io.compute_adjacency_graph(), graph);
    println!("  compute ICI unchanged by I/O ring: true");
    Ok(())
}
