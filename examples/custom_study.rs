//! Building a study programmatically — no spec file, no binary.
//!
//! The declarative study API is a plain value: construct a
//! [`StudySpec`], hand it to [`xp::flow::run_study`] with the campaign
//! flags and the arrangement-search hooks, and read the typed report
//! back. This example ranks HexaMesh against a *search-discovered*
//! arrangement under a closed-loop stencil workload — the mixed-axis
//! combination (fixed family × optimized × application kernel) that no
//! hand-wired binary ever covered.
//!
//! Run with: `cargo run --release --example custom_study`

use hexamesh_repro::arrange;
use hexamesh_repro::hexamesh::arrangement::ArrangementKind;
use hexamesh_repro::workload::WorkloadKind;
use hexamesh_repro::xp::cli::{CampaignArgs, OutputFormat};
use hexamesh_repro::xp::spec::{StageKind, StudySpec};
use hexamesh_repro::xp::{flow, StudyError};

fn main() -> Result<(), StudyError> {
    // The study: HexaMesh vs the annealed OPT arrangement, ranked by
    // stencil-kernel makespan at 19 chiplets.
    let mut spec = StudySpec::new("custom_stencil_ranking", StageKind::Workload);
    spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh]);
    spec.axes.optimized = true; // adds the searched OPT row per n
    spec.axes.ns = Some(vec![19]);
    spec.axes.workloads = Some(vec![WorkloadKind::Stencil]);
    spec.search.restarts = Some(3); // keep the example fast
    spec.search.iterations = Some(150);
    spec.seed = Some(42);

    // Campaign flags normally come from the CLI; programmatic callers
    // just fill the struct (rows are byte-identical for any `workers`).
    let args = CampaignArgs {
        workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
        seeds: 1,
        quick: true,
        full: false,
        out: std::env::temp_dir().join("custom_study"),
        format: OutputFormat::Csv,
        campaign_seed: spec.seed.unwrap_or(0),
        progress: false,
    };

    let report = flow::run_study(&spec, args, &arrange::study::hooks())?;
    println!("HexaMesh vs searched arrangement, stencil makespan:");
    for line in &report.summary {
        println!("  {line}");
    }
    for staged in &report.tables {
        for row in staged.table.rows() {
            // workload, n, kind, ..., makespan, ..., rank (last column).
            println!(
                "  {} n={} {:<4} makespan {} cycles (rank {})",
                row[0],
                row[1],
                row[2],
                row[5],
                row.last().expect("rank column")
            );
        }
    }
    for path in &report.written {
        println!("wrote {}", path.display());
    }
    Ok(())
}
