//! Print the design datasheet for an arrangement at the paper's 800 mm²
//! design point.
//!
//! Run with: `cargo run --release --example datasheet [n] [g|bw|hm]`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::eval::EvalParams;
use hexamesh_repro::hexamesh::report::datasheet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(61);
    let kind = match args.get(2).map(String::as_str) {
        Some("g") => ArrangementKind::Grid,
        Some("bw") => ArrangementKind::Brickwall,
        _ => ArrangementKind::HexaMesh,
    };
    let arrangement = Arrangement::build(kind, n)?;
    println!("{}", datasheet(&arrangement, &EvalParams::paper_defaults())?);
    Ok(())
}
