//! Full-system datasheet: every layer of the workspace on one design.
//!
//! Takes one HexaMesh design point (N = 37, the paper's UCIe parameters)
//! and runs the complete analysis stack — arrangement properties, link
//! budget, signal integrity, cycle-accurate performance, thermals, fault
//! tolerance, and economics — printing the kind of datasheet a chiplet
//! architect would want before tape-out.
//!
//! Run with: `cargo run --release --example datasheet_full`

use hexamesh_repro::cost::binning::{binning_comparison, BinningParams};
use hexamesh_repro::cost::system::{system_cost_comparison, CostParams};
use hexamesh_repro::graph::resilience::{bridges, edge_connectivity};
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::eval::{evaluate, EvalParams};
use hexamesh_repro::hexamesh::link::{UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh_repro::hexamesh::proxies;
use hexamesh_repro::hexamesh::shape::{paper_link_length, shape_for, ShapeParams};
use hexamesh_repro::layout::ChipletKind;
use hexamesh_repro::phy::{capacity, SignalBudget, Technology};
use hexamesh_repro::thermal::{solve, HotspotReport, PowerMap, ThermalParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 37;
    let kind = ArrangementKind::HexaMesh;
    let arrangement = Arrangement::build(kind, n)?;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;

    println!("================================================================");
    println!(" HexaMesh design datasheet — N = {n} compute chiplets");
    println!("================================================================\n");

    // ── Arrangement ──────────────────────────────────────────────────────
    let stats = arrangement.degree_stats();
    let diameter = proxies::measured_diameter(&arrangement).expect("connected");
    println!("ARRANGEMENT ({}, {})", kind, arrangement.regularity());
    println!("  chiplets        {n}  ({chiplet_area:.1} mm² each, 800 mm² total)");
    println!("  D2D links       {}", arrangement.graph().num_edges());
    println!(
        "  neighbours      min {} / avg {:.2} / max {}",
        stats.min, stats.average, stats.max
    );
    println!(
        "  diameter        {diameter} hops (grid at this N: {})",
        proxies::formula_diameter(ArrangementKind::Grid, n).round()
    );

    // ── Shape & signal integrity ─────────────────────────────────────────
    let shape = shape_for(kind, &ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION)?)?;
    let link_mm = paper_link_length(&shape);
    let substrate = Technology::organic_substrate();
    let budget = SignalBudget::default();
    let reach = capacity::max_length_mm(&substrate, &budget, 16.0, -15.0).expect("feasible");
    println!("\nSHAPE & SIGNAL INTEGRITY (organic substrate)");
    println!("  chiplet         {:.2} × {:.2} mm (W_C × H_C)", shape.width, shape.height);
    println!(
        "  bump sector     {:.2} mm² per link (D_B = {:.2} mm)",
        shape.link_sector_area, shape.max_bump_distance
    );
    println!("  link length     {link_mm:.2} mm vs. {reach:.2} mm reach at 16 Gb/s, BER 1e-15");
    println!("  margin          {:.1}x — no derating required", reach / link_mm);

    // ── Performance (cycle-accurate) ─────────────────────────────────────
    let result = evaluate(&arrangement, &EvalParams::quick())?;
    println!("\nPERFORMANCE (cycle-accurate, §VI-A configuration, quick schedule)");
    println!("  per-link bw     {:.0} Gb/s", result.link_bandwidth_gbps);
    println!("  zero-load lat   {:.1} cycles", result.zero_load_latency_cycles);
    println!(
        "  saturation      {:.1} Tb/s ({:.0}% of full global bandwidth)",
        result.saturation_throughput_tbps,
        result.saturation_fraction * 100.0
    );

    // ── Fault tolerance ──────────────────────────────────────────────────
    let g = arrangement.graph();
    println!("\nFAULT TOLERANCE");
    println!("  bridges         {}", bridges(g).len());
    println!(
        "  edge connect.   {} (any {} link failures survivable)",
        edge_connectivity(g).unwrap_or(0),
        edge_connectivity(g).unwrap_or(1).saturating_sub(1)
    );

    // ── Thermals ─────────────────────────────────────────────────────────
    let placement = arrangement.placement().expect("has layout");
    let first = placement.chiplets()[0].rect;
    let mm_per_unit = (chiplet_area / first.area() as f64).sqrt();
    let map = PowerMap::from_placement(placement, mm_per_unit, 1.0, 3, |c| {
        let area = (c.rect.width() * c.rect.height()) as f64 * mm_per_unit * mm_per_unit;
        match c.kind {
            ChipletKind::Compute => area * 0.25,
            ChipletKind::Io => area * 0.25 / 3.0,
        }
    })?;
    let thermal = HotspotReport::from_solution(&solve(&map, &ThermalParams::default())?);
    println!("\nTHERMALS ({:.0} W total at 0.25 W/mm²)", map.total_w());
    println!(
        "  peak            {:.1} °C (gradient {:.1} K over average)",
        thermal.peak_c, thermal.gradient_c
    );

    // ── Economics ────────────────────────────────────────────────────────
    let cost = system_cost_comparison(&CostParams::default_5nm(), UCIE_TOTAL_AREA_MM2, n)?;
    let binning = binning_comparison(&BinningParams::consumer_cpu(), n as u32)?;
    println!("\nECONOMICS (5 nm-class defaults)");
    println!(
        "  monolithic      ${:.0} per unit at {:.1}% die yield",
        cost.monolithic_total,
        cost.monolithic_yield * 100.0
    );
    println!(
        "  this design     ${:.0} per unit at {:.1}% chiplet yield ({:.2}x cheaper)",
        cost.mcm_total,
        cost.chiplet_yield * 100.0,
        cost.monolithic_over_mcm()
    );
    println!(
        "  binning bonus   +{:.0}% revenue from per-chiplet binning",
        binning.uplift_fraction() * 100.0
    );
    println!("\n================================================================");
    Ok(())
}
