//! Design-space exploration: sweep chiplet counts and report, for each
//! arrangement, the proxies and link budget — the analysis an architect
//! would run before committing to a chiplet count.
//!
//! Run with: `cargo run --release --example design_space [max_n]`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::eval::{evaluate_analytic, EvalParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let params = EvalParams::paper_defaults();

    println!("Analytic design-space sweep (A_all = {} mm²)\n", params.total_area_mm2);
    println!(
        "{:>4}  {:>14} {:>14} {:>14}   winner",
        "N", "G lat [cyc]", "BW lat [cyc]", "HM lat [cyc]"
    );

    let mut hm_wins = 0usize;
    let mut rows = 0usize;
    for n in (2..=max_n).step_by(3) {
        let mut latencies = Vec::new();
        for kind in ArrangementKind::EVALUATED {
            let arrangement = Arrangement::build(kind, n)?;
            let result = evaluate_analytic(&arrangement, &params)?;
            latencies.push((kind, result.zero_load_latency_cycles));
        }
        let (winner, _) = latencies
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("three kinds evaluated");
        if winner == ArrangementKind::HexaMesh {
            hm_wins += 1;
        }
        rows += 1;
        println!(
            "{:>4}  {:>14.1} {:>14.1} {:>14.1}   {}",
            n, latencies[0].1, latencies[1].1, latencies[2].1, winner
        );
    }
    println!("\nHexaMesh has the lowest zero-load latency at {hm_wins}/{rows} sampled counts.");
    Ok(())
}
