//! Single-link-failure analysis: what happens when a D2D link dies?
//!
//! HexaMesh's minimum degree of 3 (vs. 2 for the grid, 1 for irregular
//! grids — §IV-C) means no single link failure can isolate a chiplet. This
//! example sweeps every single-link failure at one size and reports the
//! damage: disconnections and worst-case diameter growth.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use hexamesh_repro::graph::metrics;
use hexamesh_repro::graph::resilience::{bridges, edge_connectivity, single_failure_diameter};
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 37 chiplets: the grid and brickwall are irregular (one extra chiplet
    // dangling off a regular 6x6 core — min degree 1, §IV-C), while the
    // HexaMesh is regular (three complete rings, min degree 3).
    let n = 37;
    println!("Single-link-failure sweep at N = {n} (G/BW irregular, HM regular):\n");
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "kind", "links", "min deg", "bridges", "k_edge", "diameter", "worst-1"
    );
    for kind in [ArrangementKind::Grid, ArrangementKind::Brickwall, ArrangementKind::HexaMesh] {
        let arrangement = Arrangement::build(kind, n)?;
        let g = arrangement.graph();
        let stats = arrangement.degree_stats();
        let bridge_count = bridges(g).len();
        let k = edge_connectivity(g).unwrap_or(0);
        let d0 = metrics::diameter(g).expect("connected");
        let worst = single_failure_diameter(g).map_or("n/a".to_owned(), |d| d.to_string());
        println!(
            "{:<10} {:>6} {:>8} {:>8} {:>10} {:>12} {:>8}",
            kind.to_string(),
            g.num_edges(),
            stats.min,
            bridge_count,
            k,
            d0,
            worst
        );
    }
    println!("\nA bridge is a link whose failure disconnects chiplets; `worst-1`");
    println!("is the diameter after the most damaging survivable link failure.");
    println!("HexaMesh tolerates any single failure with modest stretch; an");
    println!("irregular grid can lose a chiplet to one broken link.");
    Ok(())
}
