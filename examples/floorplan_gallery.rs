//! Render the Fig. 4 arrangement gallery as SVG floorplans (top views),
//! including the perimeter I/O ring of Fig. 2.
//!
//! Run with: `cargo run --release --example floorplan_gallery [n]`
//! Writes `results/floorplan_*.svg`.

use std::fs;
use std::path::Path;

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::layout::perimeter::fill_gaps_with_io;
use hexamesh_repro::layout::svg::{to_svg, SvgStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(37);
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir)?;

    for kind in ArrangementKind::EVALUATED {
        let arrangement = Arrangement::build(kind, n)?;
        let placement = arrangement.placement().expect("evaluated kinds are rectangular");
        // Fill the notches with I/O chiplets, as the Fig. 4 caption
        // describes, using half-size tiles so jagged edges fill neatly.
        let brick = placement.chiplets()[0].rect;
        let filled = fill_gaps_with_io(placement, brick.width() / 2, brick.height())?;
        let svg = to_svg(&filled, &SvgStyle::default());
        let path = out_dir.join(format!("floorplan_{}_{n}.svg", kind.label().to_lowercase()));
        fs::write(&path, svg)?;
        println!(
            "{kind} (n={n}, {}): {} compute + {} I/O chiplets -> {}",
            arrangement.regularity(),
            filled.compute_count(),
            filled.len() - filled.compute_count(),
            path.display()
        );
    }
    Ok(())
}
