//! Kite-style express links vs. the HexaMesh arrangement — the §VII
//! related-work comparison, quantified.
//!
//! Kite (related work [15]) improves a grid arrangement's ICI by adding
//! *longer* links, paying for them with lower link frequencies. HexaMesh
//! improves the *arrangement* so that a better graph needs only short
//! links. This example builds both at one size, derates every link by the
//! signal-integrity model, and simulates.
//!
//! Run with: `cargo run --release --example kite_vs_hexamesh`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::link::{UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh_repro::hexamesh::shape::{shape_for, ShapeParams};
use hexamesh_repro::phy::Technology;
use hexamesh_repro::topo::express::ExpressOptions;
use hexamesh_repro::topo::{evaluate, express, mesh, EvalOptions, Topology};
use nocsim::MeasureConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 36;
    let side = 6;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let shape_params = ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION)?;

    // Grid topologies: lengths in mm (adjacent = 2·D_B, +1 pitch per skip).
    let grid_shape = shape_for(ArrangementKind::Grid, &shape_params)?;
    let to_mm = |topo: &Topology, pitch: f64, d_b: f64| -> Topology {
        let edges: Vec<(usize, usize, f64)> = topo
            .edges()
            .iter()
            .map(|e| (e.u, e.v, 2.0 * d_b + (e.length_pitch - 1.0) * pitch))
            .collect();
        Topology::new(topo.name().to_owned(), topo.num_routers(), edges)
            .expect("positive lengths")
    };
    let plain = to_mm(&mesh(side, side), grid_shape.width, grid_shape.max_bump_distance);
    let kite = to_mm(
        &express(side, side, &ExpressOptions::default())?,
        grid_shape.width,
        grid_shape.max_bump_distance,
    );

    // HexaMesh: same chiplet count, all links adjacent.
    let hm_shape = shape_for(ArrangementKind::HexaMesh, &shape_params)?;
    let hm = Arrangement::build(ArrangementKind::HexaMesh, n)?;
    let hm_edges: Vec<(usize, usize, f64)> =
        hm.graph().edges().map(|(u, v)| (u, v, 1.0)).collect();
    let hexa = to_mm(
        &Topology::new("hexamesh", n, hm_edges)?,
        hm_shape.width,
        hm_shape.max_bump_distance,
    );

    let mut opts = EvalOptions::quick(Technology::organic_substrate());
    opts.pitch_mm = 1.0; // lengths already physical
    opts.schedule = MeasureConfig::quick();

    println!("N = {n} chiplets on an organic substrate, 16 Gb/s nominal:\n");
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>10} {:>12}",
        "topology", "links", "longest", "slowest", "lat [cyc]", "sat [f/c/ep]"
    );
    for topo in [&plain, &kite, &hexa] {
        let result = evaluate(topo, &opts)?;
        let longest = topo.edges().iter().map(|e| e.length_pitch).fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>6} {:>7.1}mm {:>7.1}Gb/s {:>10.1} {:>12.3}",
            topo.name(),
            topo.edges().len(),
            longest,
            result.min_rate_gbps,
            result.zero_load_latency,
            result.saturation.throughput
        );
    }
    println!("\nKite-style express links buy the lowest hop latency but their");
    println!("long wires are derated hard; HexaMesh reaches similar latency");
    println!("with every link at full rate.");
    Ok(())
}
