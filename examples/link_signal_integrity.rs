//! Signal-integrity walkthrough: why D2D links must be short.
//!
//! The paper's §V treats the link frequency as an input because adjacent
//! chiplet links are short enough to run at full rate. This example shows
//! the physics behind that assumption with the `chiplet-phy` extension:
//! insertion loss, eye closure, BER, and the resulting reach limits for
//! both wiring technologies.
//!
//! Run with: `cargo run --release --example link_signal_integrity`

use hexamesh_repro::hexamesh::arrangement::ArrangementKind;
use hexamesh_repro::hexamesh::link::{UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh_repro::hexamesh::shape::{shape_for, ShapeParams};
use hexamesh_repro::phy::{capacity, eye, SignalBudget, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = SignalBudget::default();

    // ── 1. The eye budget of one link, step by step ─────────────────────
    let interposer = Technology::silicon_interposer();
    println!("Anatomy of a 16 Gb/s interposer link at increasing length:\n");
    println!(
        "{:>6} {:>8} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "ℓ [mm]", "IL [dB]", "swing[mV]", "ISI[mV]", "XT[mV]", "eye[mV]", "log10 BER"
    );
    for length in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let a = eye::analyze(&interposer, &budget, 16.0, length);
        println!(
            "{:>6.1} {:>8.2} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>10.1}",
            length,
            a.insertion_loss_db,
            a.received_swing_v * 1e3,
            a.isi_closure_v * 1e3,
            a.crosstalk_closure_v * 1e3,
            a.eye_height_v * 1e3,
            a.log10_ber.max(-40.0),
        );
    }

    // ── 2. Reach limits vs. the paper's claims ──────────────────────────
    let substrate = Technology::organic_substrate();
    println!("\nReach at 16 Gb/s per wire, BER 1e-15:");
    for tech in [&substrate, &interposer] {
        let reach = capacity::max_length_mm(tech, &budget, 16.0, -15.0)
            .expect("feasible at zero length");
        println!("  {:<28} {:>5.2} mm", tech.name, reach);
    }
    println!("  (paper: substrate links < 4 mm in general, interposer <= 2 mm)");

    // ── 3. Do the paper's arrangements stay within reach? ───────────────
    println!("\nAdjacent-link length (2·D_B) across chiplet counts:");
    println!("{:>4} {:>10} {:>12} {:>12}", "N", "A_C [mm²]", "grid [mm]", "hexa [mm]");
    for n in [4usize, 10, 25, 50, 100] {
        let area = UCIE_TOTAL_AREA_MM2 / n as f64;
        let params = ShapeParams::new(area, UCIE_POWER_FRACTION)?;
        let grid = shape_for(ArrangementKind::Grid, &params)?;
        let hexa = shape_for(ArrangementKind::HexaMesh, &params)?;
        println!(
            "{:>4} {:>10.1} {:>12.2} {:>12.2}",
            n,
            area,
            2.0 * grid.max_bump_distance,
            2.0 * hexa.max_bump_distance
        );
    }
    println!("\nEvery adjacent link at N >= 10 stays below 2 mm — §V's claim —");
    println!("so the paper's 16 GHz operating point needs no derating.");
    Ok(())
}
