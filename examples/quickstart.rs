//! Quickstart: compare a HexaMesh against the grid baseline at one size.
//!
//! Run with: `cargo run --release --example quickstart`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::eval::{link_budget, EvalParams};
use hexamesh_repro::hexamesh::proxies;
use hexamesh_repro::partition::BisectionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 37 chiplets: a regular HexaMesh (three complete rings) and whatever
    // the grid can do with a prime-ish count (irregular).
    let n = 37;
    let params = EvalParams::paper_defaults();
    let bisection_config = BisectionConfig::default();

    println!("HexaMesh vs grid at N = {n} chiplets\n");
    println!(
        "{:<10} {:>11} {:>9} {:>10} {:>12} {:>14}",
        "kind", "regularity", "diameter", "bisection", "min/max nbrs", "link bw [Gb/s]"
    );
    for kind in [ArrangementKind::Grid, ArrangementKind::Brickwall, ArrangementKind::HexaMesh] {
        let arrangement = Arrangement::build(kind, n)?;
        let stats = arrangement.degree_stats();
        let diameter = proxies::measured_diameter(&arrangement).expect("connected");
        let bisection = proxies::paper_bisection(&arrangement, &bisection_config);
        let budget = link_budget(&arrangement, &params)?;
        println!(
            "{:<10} {:>11} {:>9} {:>10.1} {:>9}/{:<3} {:>13.0}",
            kind.to_string(),
            arrangement.regularity().to_string(),
            diameter,
            bisection,
            stats.min,
            stats.max,
            budget.estimate.bandwidth_gbps(),
        );
    }

    println!();
    println!(
        "Asymptotically, HexaMesh cuts the diameter by {:.0}% and lifts bisection by {:.0}%",
        100.0 * (1.0 - proxies::DIAMETER_RATIO_HM_OVER_G),
        100.0 * (proxies::BISECTION_RATIO_HM_OVER_G - 1.0),
    );
    Ok(())
}
