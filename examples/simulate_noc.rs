//! Drive the cycle-accurate simulator directly: one HexaMesh under three
//! traffic patterns, reporting latency and delivered throughput — the level
//! of control a NoC researcher needs below the figure-regeneration harness.
//!
//! Run with: `cargo run --release --example simulate_noc`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::nocsim::{measure, SimConfig, Simulator, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arrangement = Arrangement::build(ArrangementKind::HexaMesh, 19)?;
    let graph = arrangement.graph();

    println!("HexaMesh N=19 under the paper's router configuration");
    println!("(8 VCs, 8-flit buffers, 3-cycle routers, 27-cycle links)\n");

    let patterns: [(&str, TrafficPattern); 3] = [
        ("uniform random", TrafficPattern::UniformRandom),
        ("complement", TrafficPattern::Complement),
        ("neighbor shift", TrafficPattern::NeighborShift { shift: 2 }),
    ];

    println!(
        "{:<16} {:>12} {:>16} {:>14}",
        "pattern", "lat [cyc]", "accepted [f/c/e]", "packets"
    );
    for (name, pattern) in patterns {
        let config = SimConfig { pattern, injection_rate: 0.10, ..SimConfig::paper_defaults() };
        let mut sim = Simulator::new(graph, config)?;
        sim.run(3_000); // warmup
        sim.open_measurement_window();
        sim.run(6_000);
        let stats = sim.stats();
        println!(
            "{:<16} {:>12.1} {:>16.4} {:>14}",
            name,
            stats.avg_packet_latency.unwrap_or(f64::NAN),
            stats.accepted_flits_per_cycle_per_endpoint,
            stats.received_packets
        );
    }

    // Zero-load latency and the saturation point under uniform traffic.
    let config = SimConfig::paper_defaults();
    let zero_load = measure::zero_load_latency(graph, &config)?;
    println!("\nzero-load latency (structural): {zero_load:.1} cycles");
    let schedule = hexamesh_repro::nocsim::MeasureConfig::quick();
    let sat = measure::saturation_search(graph, &config, &schedule)?;
    println!(
        "saturation: rate {:.3} flits/cycle/endpoint, accepted {:.3} ({}% of capacity)",
        sat.rate,
        sat.throughput,
        (sat.throughput * 100.0).round()
    );
    Ok(())
}
