//! Thermal maps of chiplet arrangements: where do the hotspots sit?
//!
//! Builds the grid and HexaMesh floorplans at the same chiplet count and
//! total power, solves the steady-state heat equation, and renders ASCII
//! heat maps side by side with the summary statistics.
//!
//! Run with: `cargo run --release --example thermal_map`

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::link::UCIE_TOTAL_AREA_MM2;
use hexamesh_repro::layout::ChipletKind;
use hexamesh_repro::thermal::analysis::ascii_heatmap;
use hexamesh_repro::thermal::{solve, HotspotReport, PowerMap, ThermalParams};

/// Compute-silicon power density (W/mm²): 200 W on an 800 mm² budget.
const DENSITY: f64 = 0.25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 37;
    for kind in [ArrangementKind::Grid, ArrangementKind::HexaMesh] {
        let arrangement = Arrangement::build(kind, n)?;
        let placement = arrangement.placement().expect("evaluated kinds have layouts");
        let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
        let first = placement.chiplets()[0].rect;
        let unit_area = first.area() as f64;
        let mm_per_unit = (chiplet_area / unit_area).sqrt();

        let map = PowerMap::from_placement(placement, mm_per_unit, 1.0, 3, |c| {
            let area = (c.rect.width() * c.rect.height()) as f64 * mm_per_unit * mm_per_unit;
            match c.kind {
                ChipletKind::Compute => area * DENSITY,
                ChipletKind::Io => area * DENSITY / 3.0,
            }
        })?;
        let solution = solve(&map, &ThermalParams::default())?;
        let report = HotspotReport::from_solution(&solution);

        println!("── {kind} arrangement, N = {n}, {:.0} W total ──", map.total_w());
        println!("{report}");
        println!("{}", ascii_heatmap(&solution));

        // Publication-style SVG next to the CSV outputs.
        let path = format!("results/thermal_{}.svg", kind.to_string().to_lowercase());
        std::fs::create_dir_all("results")?;
        std::fs::write(&path, hexamesh_repro::thermal::svg::render(&solution))?;
        println!("(SVG heat map written to {path})\n");
    }
    println!("(ramp: . coldest → @ hottest; each character is one 1 mm cell)");
    Ok(())
}
