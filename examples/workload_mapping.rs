//! Workload mapping: carving a chiplet arrangement into k regions.
//!
//! A 2.5D system rarely runs one monolithic workload; hypervisors map
//! tenants or jobs onto *regions* of chiplets. Communication then stays
//! mostly within a region, so a good mapping wants regions that are
//! compact (few hops internally) and balanced. This example uses the
//! k-way partitioner (the METIS-substitute's extension) on the grid and
//! HexaMesh ICI graphs and measures what region-local traffic gains.
//!
//! Run with: `cargo run --release --example workload_mapping`

use hexamesh_repro::graph::bfs;
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::partition::partition_kway;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 37;
    let k = 4;
    println!("Mapping {k} workload regions onto {n}-chiplet arrangements:\n");
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "kind", "cut edges", "balance", "local hops", "global hops", "benefit"
    );
    for kind in [ArrangementKind::Grid, ArrangementKind::Brickwall, ArrangementKind::HexaMesh] {
        let arrangement = Arrangement::build(kind, n)?;
        let g = arrangement.graph();
        let mapping = partition_kway(g, k)?;

        // Average hop distance between chiplet pairs inside the same
        // region vs. across the whole chip: the locality benefit a
        // region-aware scheduler banks.
        let mut local = Mean::default();
        let mut global = Mean::default();
        for u in 0..n {
            let dist = bfs::distances(g, u);
            for (v, &hops) in dist.iter().enumerate() {
                if u == v {
                    continue;
                }
                let d = f64::from(hops);
                global.push(d);
                if mapping.part(u) == mapping.part(v) {
                    local.push(d);
                }
            }
        }
        let sizes = mapping.sizes();
        let balance =
            format!("{}..{}", sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        let local_avg = local.mean();
        let global_avg = global.mean();
        println!(
            "{:<10} {:>9} {:>10} {:>12.2} {:>12.2} {:>7.0}%",
            kind.to_string(),
            mapping.edge_cut(g),
            balance,
            local_avg,
            global_avg,
            (1.0 - local_avg / global_avg) * 100.0
        );
    }
    println!("\nRegion-local traffic travels ~30-50% fewer hops than chip-wide");
    println!("traffic; the denser HexaMesh graph keeps even global traffic short.");
    Ok(())
}

/// Running mean without storing samples.
#[derive(Default)]
struct Mean {
    sum: f64,
    count: u64,
}

impl Mean {
    fn push(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum / self.count as f64
    }
}
