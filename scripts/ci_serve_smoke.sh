#!/usr/bin/env bash
# serve-smoke: drive `study serve` through the cache states that matter —
# cold miss, exact hit across separate server processes, warm superset
# splice, and same-stream in-flight dedup — asserting the streamed
# provenance of each. Separate invocations per request where a *disk*
# hit is the point: within one stream, identical requests dedupe to one
# backend run instead (the final invocation asserts exactly that).
#
# Usage: scripts/ci_serve_smoke.sh [target/release] [stats-out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
STATS_OUT="${2:-serve_cache_stats.json}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT
CACHE="$OUT/cache"
SERVE=("$BIN/study" serve --cache-dir "$CACHE" --quick --seed 42 --workers 2)

SUB='{"id":"r","spec":{"name":"smoke","stage":"load_curve","axes":{"kinds":["hexamesh"],"ns":[7],"rates":[0.08,0.16]}}}'
SUP='{"id":"r","spec":{"name":"smoke","stage":"load_curve","axes":{"kinds":["hexamesh"],"ns":[7],"rates":[0.08,0.16,0.24]}}}'

expect() {
    local label="$1" stream="$2" pattern="$3"
    if ! grep -q "$pattern" "$stream"; then
        echo "serve-smoke: $label: expected $pattern in stream:" >&2
        cat "$stream" >&2
        exit 1
    fi
}

echo "== cold miss"
printf '%s\n' "$SUB" | "${SERVE[@]}" > "$OUT/cold.jsonl" 2> /dev/null
expect cold "$OUT/cold.jsonl" '"outcome":"miss"'
expect cold "$OUT/cold.jsonl" '"cells_run":2'

echo "== exact hit (new process, same cache)"
printf '%s\n' "$SUB" | "${SERVE[@]}" > "$OUT/hit.jsonl" 2> /dev/null
expect hit "$OUT/hit.jsonl" '"outcome":"hit"'
expect hit "$OUT/hit.jsonl" '"hits":1'

echo "== warm superset (cached cells spliced, delta run)"
printf '%s\n' "$SUP" | "${SERVE[@]}" > "$OUT/warm.jsonl" 2> /dev/null
expect warm "$OUT/warm.jsonl" '"outcome":"warm"'
expect warm "$OUT/warm.jsonl" '"cells_cached":2'
expect warm "$OUT/warm.jsonl" '"cells_run":1'
expect warm "$OUT/warm.jsonl" '"warm_from"'

echo "== warm result replays as an exact hit"
printf '%s\n' "$SUP" | "${SERVE[@]}" > "$OUT/warm_hit.jsonl" 2> /dev/null
expect warm_hit "$OUT/warm_hit.jsonl" '"outcome":"hit"'

echo "== in-flight dedup (two identical requests, one stream, cold cache)"
printf '%s\n%s\n' "$SUB" "$SUB" | "$BIN/study" serve --cache-dir "$OUT/dedup_cache" \
    --quick --seed 42 --workers 2 --stats-out "$STATS_OUT" \
    > "$OUT/dedup.jsonl" 2> /dev/null
expect dedup "$STATS_OUT" '"requests":2'
expect dedup "$STATS_OUT" '"backend_runs":1'

echo "serve-smoke: cold/hit/warm/dedup provenance all as served ($STATS_OUT)"
