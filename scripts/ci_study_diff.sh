#!/usr/bin/env bash
# study-vs-legacy: run `study` against every checked-in preset spec with
# --quick and diff the CSV against the matching legacy binary invoked
# with the equivalent flags. Proves the spec files, the preset registry,
# and the binaries' flag translation all name the same campaign.
#
# Delete-safe once the legacy binaries are retired: drop the binary side
# of a pair and keep the spec-only run.
#
# Usage: scripts/ci_study_diff.sh [target/release]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT
SHARED=(--quick --seed 42 --workers 2 --format both)

run_pair() {
    local name="$1" spec="$2" csv="$3"
    shift 3
    echo "== $name"
    "$BIN/study" --spec "examples/specs/$spec" "${SHARED[@]}" --out "$OUT/spec_$name" \
        > /dev/null
    "$BIN/$name" "$@" "${SHARED[@]}" --out "$OUT/bin_$name" > /dev/null
    for stem in $csv; do
        cmp "$OUT/spec_$name/$stem.csv" "$OUT/bin_$name/$stem.csv"
        echo "   $stem.csv identical"
    done
}

run_pair fig7_simulation fig7_quick.toml "fig7_results fig7_normalized" \
    --step 7 --max-n 9
run_pair load_curves load_curves_quick.toml load_curves --n 16
run_pair ablation_traffic ablation_traffic_quick.toml ablation_traffic \
    --n 9 --patterns uniform,tornado
run_pair ablation_router ablation_router_quick.toml ablation_router \
    --n 9 --routers baseline,oldest,fortified
run_pair workload_comparison workload_quick.toml BENCH_workload \
    --ns 7,13 --workloads stencil,client_server
run_pair kite_comparison kite_quick.toml kite_comparison --ns 16
run_pair arrangement_search arrangement_search_quick.toml BENCH_arrange \
    --ns 19 --restarts 3 --iterations 120
run_pair thermal_comparison thermal_quick.toml thermal_comparison --n 16
run_pair cost_model cost_model.toml cost_model
# Only the structural table is diffed: the spec file shrinks the
# [faults] degradation axes below the binary's --quick defaults (the
# degradation table is covered by the golden test instead).
run_pair resilience resilience_quick.toml resilience

# The axis combination no legacy binary covers: runs end to end purely
# from data (no diff target by construction).
echo "== opt_hotspot_load_curve (spec-only)"
"$BIN/study" --spec examples/specs/opt_hotspot_load_curve.toml "${SHARED[@]}" \
    --out "$OUT/spec_opt" > /dev/null
grep -q ",OPT," "$OUT/spec_opt/opt_hotspot_curves.csv"
echo "   searched-arrangement rows present"

echo "study-vs-legacy: all preset specs byte-identical"
