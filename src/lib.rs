//! Facade crate for the HexaMesh (DAC 2023) reproduction workspace.
//!
//! Re-exports every layer of the reproduction so that examples and
//! integration tests can depend on a single crate.

#![forbid(unsafe_code)]

pub use chiplet_arrange as arrange;
pub use chiplet_cost as cost;
pub use chiplet_graph as graph;
pub use chiplet_layout as layout;
pub use chiplet_partition as partition;
pub use chiplet_phy as phy;
pub use chiplet_thermal as thermal;
pub use chiplet_topo as topo;
pub use chiplet_workload as workload;
pub use hexamesh;
pub use nocsim;
pub use xp;
