//! Facade crate for the HexaMesh (DAC 2023) reproduction workspace.
//!
//! Re-exports every layer of the reproduction so that examples and
//! integration tests can depend on a single crate.
//!
//! The usual entry point for running experiments is the declarative
//! study API: build (or load) a [`StudySpec`], then execute it with
//! [`xp::flow::run_study`] and the [`arrange::study::hooks`] stage hooks
//! — see `examples/custom_study.rs` and the `study` binary
//! (`crates/bench/src/bin/study.rs`).

#![forbid(unsafe_code)]

pub use chiplet_arrange as arrange;
pub use chiplet_cost as cost;
pub use chiplet_graph as graph;
pub use chiplet_layout as layout;
pub use chiplet_partition as partition;
pub use chiplet_phy as phy;
pub use chiplet_thermal as thermal;
pub use chiplet_topo as topo;
pub use chiplet_workload as workload;
pub use hexamesh;
pub use nocsim;
pub use xp;

pub use xp::spec::{StageKind, StudySpec};
