//! API-guideline guarantees (Rust API Guidelines): every public error type
//! implements `Error + Send + Sync + 'static` (C-GOOD-ERR), data types are
//! `Send + Sync` where expected (C-SEND-SYNC), and `Debug` never vanishes
//! from public types (C-DEBUG). These are compile-time checks: the test
//! body passing means the bounds hold.

use std::error::Error;

fn assert_error<T: Error + Send + Sync + 'static>() {}
fn assert_send_sync<T: Send + Sync>() {}
fn assert_debug<T: std::fmt::Debug>() {}

#[test]
fn error_types_are_well_behaved() {
    // C-GOOD-ERR across every crate of the workspace.
    assert_error::<hexamesh_repro::graph::GraphError>();
    assert_error::<hexamesh_repro::partition::PartitionError>();
    assert_error::<hexamesh_repro::partition::KwayError>();
    assert_error::<hexamesh_repro::layout::LayoutError>();
    assert_error::<hexamesh_repro::cost::CostError>();
    assert_error::<hexamesh_repro::phy::tech::TechnologyError>();
    assert_error::<hexamesh_repro::thermal::ThermalError>();
    assert_error::<hexamesh_repro::topo::TopologyError>();
    assert_error::<hexamesh_repro::topo::TopoEvalError>();
    assert_error::<nocsim::SimError>();
    assert_error::<nocsim::RoutingError>();
    assert_error::<hexamesh::arrangement::ArrangementError>();
    assert_error::<hexamesh::shape::ShapeError>();
    assert_error::<hexamesh::link::LinkModelError>();
    assert_error::<hexamesh::eval::EvalError>();
}

#[test]
fn core_data_types_are_send_and_sync() {
    // C-SEND-SYNC: analysis results and configurations cross threads (the
    // evaluation sweep is parallelised).
    assert_send_sync::<hexamesh_repro::graph::Graph>();
    assert_send_sync::<hexamesh::arrangement::Arrangement>();
    assert_send_sync::<hexamesh::eval::EvalParams>();
    assert_send_sync::<hexamesh::eval::EvalResult>();
    assert_send_sync::<nocsim::SimConfig>();
    assert_send_sync::<nocsim::NetworkStats>();
    assert_send_sync::<nocsim::Simulator>();
    assert_send_sync::<hexamesh_repro::phy::Technology>();
    assert_send_sync::<hexamesh_repro::phy::EyeAnalysis>();
    assert_send_sync::<hexamesh_repro::thermal::PowerMap>();
    assert_send_sync::<hexamesh_repro::thermal::ThermalSolution>();
    assert_send_sync::<hexamesh_repro::topo::Topology>();
    assert_send_sync::<hexamesh_repro::topo::TopoEval>();
    assert_send_sync::<hexamesh_repro::partition::KwayPartition>();
    assert_send_sync::<hexamesh_repro::cost::binning::BinningParams>();
}

#[test]
fn public_types_implement_debug() {
    // C-DEBUG spot checks on the extension surface.
    assert_debug::<hexamesh_repro::phy::SignalBudget>();
    assert_debug::<hexamesh_repro::phy::Modulation>();
    assert_debug::<hexamesh_repro::thermal::HotspotReport>();
    assert_debug::<hexamesh_repro::thermal::ThermalParams>();
    assert_debug::<hexamesh_repro::topo::LinkEdge>();
    assert_debug::<hexamesh_repro::topo::EvalOptions>();
    assert_debug::<hexamesh_repro::partition::SpectralConfig>();
    assert_debug::<nocsim::LinkSpec>();
}

#[test]
fn defaults_match_documented_constructors() {
    // C-COMMON-TRAITS: `Default` agrees with the documented `new`-style
    // constructors.
    use hexamesh_repro::phy::SignalBudget;
    use hexamesh_repro::thermal::ThermalParams;
    assert_eq!(SignalBudget::default(), SignalBudget::new());
    assert_eq!(ThermalParams::default(), ThermalParams::new());
    assert_eq!(nocsim::SimConfig::default(), nocsim::SimConfig::paper_defaults());
    assert_eq!(
        hexamesh::eval::EvalParams::default(),
        hexamesh::eval::EvalParams::paper_defaults()
    );
}
