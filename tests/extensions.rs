//! Cross-crate integration tests for the extension layers: the
//! signal-integrity model against the paper's claims, thermal analysis of
//! real arrangement floorplans, and the length-aware topology pipeline.

use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::hexamesh::link::{UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh_repro::hexamesh::shape::{shape_for, ShapeParams};
use hexamesh_repro::layout::ChipletKind;
use hexamesh_repro::phy::{capacity, eye, SignalBudget, Technology};
use hexamesh_repro::thermal::{solve, HotspotReport, PowerMap, ThermalParams};
use hexamesh_repro::topo::express::ExpressOptions;
use hexamesh_repro::topo::{evaluate, express, mesh, EvalOptions, Topology};
use nocsim::MeasureConfig;

/// §V: "we only consider D2D links between adjacent chiplets, whose
/// lengths are relatively short (below 4 mm in general, for N ≥ 10
/// chiplets even below 2 mm)". The paper's length proxy is `D_B`
/// ([`hexamesh_repro::hexamesh::shape::paper_link_length`]); our
/// conservative 2·D_B upper bound must still run at full rate on the
/// substrate for practical counts — i.e. the §V "frequency is an input"
/// assumption survives even the pessimistic geometry.
#[test]
fn adjacent_links_never_need_derating() {
    use hexamesh_repro::hexamesh::shape::{estimated_link_length, paper_link_length};
    let budget = SignalBudget::default();
    let substrate = Technology::organic_substrate();
    for n in 2..=100usize {
        let area = UCIE_TOTAL_AREA_MM2 / n as f64;
        let params = ShapeParams::new(area, UCIE_POWER_FRACTION).expect("valid");
        for kind in [ArrangementKind::Grid, ArrangementKind::HexaMesh] {
            let shape = shape_for(kind, &params).expect("solvable");
            // The paper's claim, with the paper's proxy:
            let paper_mm = paper_link_length(&shape);
            assert!(paper_mm < 4.0, "N={n} {kind:?}: link {paper_mm:.2} mm >= 4 mm");
            if n >= 10 {
                assert!(paper_mm < 2.0, "N={n} {kind:?}: link {paper_mm:.2} mm >= 2 mm");
            }
            // Our pessimistic bound still needs no derating at N ≥ 6:
            if n >= 6 {
                let worst_mm = estimated_link_length(&shape);
                let derated =
                    capacity::derated_bit_rate_gbps(&substrate, &budget, worst_mm, 16.0, -15.0);
                assert_eq!(derated, 16.0, "N={n} {kind:?} derated to {derated}");
            }
        }
    }
}

/// §II: the interposer's ≤ 2 mm limit and the substrate's ~4 mm envelope
/// fall out of the same calibrated model, substrate strictly farther.
#[test]
fn technology_reach_ordering() {
    let budget = SignalBudget::default();
    let sub = capacity::max_length_mm(&Technology::organic_substrate(), &budget, 16.0, -15.0)
        .expect("feasible");
    let int = capacity::max_length_mm(&Technology::silicon_interposer(), &budget, 16.0, -15.0)
        .expect("feasible");
    assert!(sub > int, "substrate {sub:.2} !> interposer {int:.2}");
    assert!((1.8..=2.6).contains(&int), "interposer reach {int:.2}");
    assert!((4.0..=5.5).contains(&sub), "substrate reach {sub:.2}");
}

/// The eye budget is monotone along the §V operating curve: longer or
/// faster always means equal-or-worse BER.
#[test]
fn eye_budget_monotone_on_the_operating_curve() {
    let budget = SignalBudget::default();
    let tech = Technology::silicon_interposer();
    let mut last = f64::NEG_INFINITY;
    for tenths in 1..=40u32 {
        let ber = eye::analyze(&tech, &budget, 16.0, f64::from(tenths) * 0.1).log10_ber;
        assert!(ber >= last - 1e-9, "BER improved with length at {tenths}");
        last = ber;
    }
}

/// Thermal pipeline end to end on real floorplans: equal power in, every
/// arrangement comes out with finite, ordered statistics, and total heat
/// balances.
#[test]
fn arrangement_thermal_pipeline() {
    let n = 19; // regular HexaMesh (2 rings), irregular grid
    let density = 0.25;
    let mut peaks = Vec::new();
    for kind in ArrangementKind::EVALUATED {
        let arrangement = Arrangement::build(kind, n).expect("builds");
        let placement = arrangement.placement().expect("evaluated kinds have layouts");
        let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
        let first = placement.chiplets()[0].rect;
        let mm_per_unit = (chiplet_area / first.area() as f64).sqrt();
        let map = PowerMap::from_placement(placement, mm_per_unit, 1.0, 3, |c| {
            let area = (c.rect.width() * c.rect.height()) as f64 * mm_per_unit * mm_per_unit;
            match c.kind {
                ChipletKind::Compute => area * density,
                ChipletKind::Io => area * density / 3.0,
            }
        })
        .expect("rasterises");
        let params = ThermalParams::default();
        let solution = solve(&map, &params).expect("converges");
        let report = HotspotReport::from_solution(&solution);
        assert!(report.peak_c > params.ambient_c, "{kind:?} never heated up");
        assert!(report.peak_c < 150.0, "{kind:?} implausibly hot: {}", report.peak_c);
        assert!(report.gradient_c >= 0.0);
        // Energy balance: vertical-path heat removal equals generation.
        let g_v = map.cell_mm() * map.cell_mm() / params.r_vertical_k_mm2_per_w;
        let removed: f64 = solution.cells().iter().map(|t| g_v * (t - params.ambient_c)).sum();
        let rel = (removed - map.total_w()).abs() / map.total_w();
        assert!(rel < 1e-3, "{kind:?} energy imbalance {rel}");
        peaks.push(report.peak_c);
    }
    // All three peaks within a few kelvin of each other (same power, same
    // footprint area) — the arrangements differ in shape, not in physics.
    let max = peaks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = peaks.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(max - min < 5.0, "peaks spread implausibly: {peaks:?}");
}

/// The related-work pipeline: express links get derated, the mesh does
/// not, and both simulate to a positive saturation point.
#[test]
fn express_topology_pays_the_length_penalty() {
    let n = 16usize;
    let side = 4;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let shape = shape_for(
        ArrangementKind::Grid,
        &ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION).expect("valid"),
    )
    .expect("solvable");

    let to_mm = |topo: &Topology| -> Topology {
        let edges: Vec<(usize, usize, f64)> = topo
            .edges()
            .iter()
            .map(|e| {
                (e.u, e.v, 2.0 * shape.max_bump_distance + (e.length_pitch - 1.0) * shape.width)
            })
            .collect();
        Topology::new(topo.name().to_owned(), topo.num_routers(), edges).expect("valid")
    };

    let mut opts = EvalOptions::quick(Technology::organic_substrate());
    opts.pitch_mm = 1.0;
    opts.schedule = MeasureConfig::quick();

    let plain = evaluate(&to_mm(&mesh(side, side)), &opts).expect("feasible");
    let kite = evaluate(
        &to_mm(&express(side, side, &ExpressOptions::default()).expect("builds")),
        &opts,
    )
    .expect("feasible");

    assert_eq!(plain.max_interval, 1, "mesh links must run at full rate");
    assert!(kite.max_interval > 1, "express links must be derated");
    assert!(kite.zero_load_latency < plain.zero_load_latency, "express must cut hops");
    assert!(plain.saturation.throughput > 0.0);
    assert!(kite.saturation.throughput > 0.0);
}

/// HexaMesh at equal chiplet count beats the plain mesh on zero-load
/// latency with *no* link derated — the paper's §VII argument against
/// long-link topologies, reproduced through the extension stack.
#[test]
fn hexamesh_beats_mesh_without_derating() {
    let n = 25usize;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let params = ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION).expect("valid");

    let grid_shape = shape_for(ArrangementKind::Grid, &params).expect("solvable");
    let hm_shape = shape_for(ArrangementKind::HexaMesh, &params).expect("solvable");

    let mesh_topo = {
        let t = mesh(5, 5);
        let edges: Vec<(usize, usize, f64)> =
            t.edges().iter().map(|e| (e.u, e.v, 2.0 * grid_shape.max_bump_distance)).collect();
        Topology::new("mesh", 25, edges).expect("valid")
    };
    let hm_topo = {
        let hm = Arrangement::build(ArrangementKind::HexaMesh, n).expect("builds");
        let edges: Vec<(usize, usize, f64)> =
            hm.graph().edges().map(|(u, v)| (u, v, 2.0 * hm_shape.max_bump_distance)).collect();
        Topology::new("hexamesh", n, edges).expect("valid")
    };

    let mut opts = EvalOptions::quick(Technology::organic_substrate());
    opts.pitch_mm = 1.0;
    opts.schedule = MeasureConfig::quick();

    let m = evaluate(&mesh_topo, &opts).expect("feasible");
    let h = evaluate(&hm_topo, &opts).expect("feasible");
    assert_eq!(m.max_interval, 1);
    assert_eq!(h.max_interval, 1, "HexaMesh links stay within reach");
    assert!(
        h.zero_load_latency < m.zero_load_latency,
        "HexaMesh {:.1} !< mesh {:.1}",
        h.zero_load_latency,
        m.zero_load_latency
    );
}
