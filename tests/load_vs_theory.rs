//! Cross-crate consistency: the *measured* channel loads of the simulator
//! agree with graph-theoretic predictions (edge betweenness), which in turn
//! back the paper's use of bisection bandwidth as a throughput proxy.

use hexamesh_repro::graph::{centrality, gen};
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_repro::nocsim::{RoutingKind, SimConfig, Simulator};

fn run_and_collect_loads(
    g: &hexamesh_repro::graph::Graph,
    routing: RoutingKind,
) -> Vec<(usize, usize, u64)> {
    let config = SimConfig {
        injection_rate: 0.08,
        vcs: 4,
        buffer_depth: 4,
        routing,
        seed: 17,
        ..SimConfig::paper_defaults()
    };
    let mut sim = Simulator::new(g, config).expect("valid");
    sim.run(12_000);
    sim.channel_loads()
}

/// Sums the two directed-load entries of an undirected edge.
fn undirected_load(loads: &[(usize, usize, u64)], u: usize, v: usize) -> u64 {
    loads
        .iter()
        .filter(|&&(s, d, _)| (s, d) == (u, v) || (s, d) == (v, u))
        .map(|&(_, _, c)| c)
        .sum()
}

#[test]
fn channel_load_correlates_with_edge_betweenness() {
    // On an elongated grid the ranking of edges by betweenness and by
    // simulated load must agree at the top and bottom.
    let g = gen::grid(2, 6);
    let betweenness = centrality::edge_betweenness(&g);
    let edges: Vec<_> = g.edges().collect();
    let loads = run_and_collect_loads(&g, RoutingKind::MinimalDeterministic);

    // Identify the max-betweenness and min-betweenness edges.
    let (hot_idx, _) =
        betweenness.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty");
    let (cold_idx, _) =
        betweenness.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty");
    let hot_load = undirected_load(&loads, edges[hot_idx].0, edges[hot_idx].1);
    let cold_load = undirected_load(&loads, edges[cold_idx].0, edges[cold_idx].1);
    assert!(
        hot_load > cold_load,
        "hot edge {:?} load {hot_load} !> cold edge {:?} load {cold_load}",
        edges[hot_idx],
        edges[cold_idx]
    );
}

#[test]
fn hexamesh_uses_channels_more_lightly_per_flit_than_grid() {
    // The mechanism behind the throughput win: the HexaMesh has more
    // channels *and* shorter paths, so each delivered flit occupies less of
    // each channel on average. Normalising per delivered flit makes the
    // comparison load-independent (at matching offered load the grid may
    // already be saturated where the HexaMesh is not — itself part of the
    // story).
    let n = 19;
    let grid = Arrangement::build(ArrangementKind::Grid, n).unwrap();
    let hm = Arrangement::build(ArrangementKind::HexaMesh, n).unwrap();
    let stats_for = |a: &Arrangement| -> (f64, f64) {
        let config = SimConfig {
            injection_rate: 0.08,
            vcs: 4,
            buffer_depth: 4,
            seed: 17,
            ..SimConfig::paper_defaults()
        };
        let mut sim = Simulator::new(a.graph(), config).expect("valid");
        sim.open_measurement_window();
        sim.run(12_000);
        let loads = sim.channel_loads();
        let total: u64 = loads.iter().map(|&(_, _, c)| c).sum();
        let flits = sim.stats().received_flits.max(1) as f64;
        let avg_hops = total as f64 / flits;
        let per_channel_per_flit = total as f64 / loads.len() as f64 / flits;
        (avg_hops, per_channel_per_flit)
    };
    let (grid_hops, grid_occupancy) = stats_for(&grid);
    let (hm_hops, hm_occupancy) = stats_for(&hm);
    assert!(hm_hops < grid_hops, "HM hops {hm_hops:.2} !< grid {grid_hops:.2}");
    assert!(
        hm_occupancy < 0.7 * grid_occupancy,
        "HM per-flit occupancy {hm_occupancy:.4} not clearly below grid {grid_occupancy:.4}"
    );
}

#[test]
fn total_channel_load_counts_every_traversal() {
    // Conservation from the channel perspective: total link traversals =
    // sum over delivered flits of their hop counts (plus in-flight, which a
    // drain removes).
    let g = gen::grid(3, 3);
    let config = SimConfig {
        injection_rate: 0.05,
        vcs: 4,
        buffer_depth: 4,
        seed: 23,
        ..SimConfig::paper_defaults()
    };
    let mut sim = Simulator::new(&g, config).expect("valid");
    sim.open_measurement_window();
    sim.run(4_000);
    assert!(sim.drain(40_000));
    let total: u64 = sim.channel_loads().iter().map(|&(_, _, c)| c).sum();
    let stats = sim.stats();
    // Every packet travels at least 0 and at most diameter hops; the total
    // traversals must be consistent with those bounds.
    let diameter = hexamesh_repro::graph::metrics::diameter(&g).unwrap() as u64;
    assert!(total <= stats.received_flits * diameter);
    // With 18 endpoints on 9 routers, most pairs are remote: traffic must
    // have used the network.
    assert!(total > 0);
}
