//! Cross-crate integration tests: the full arrangement → graph → link model
//! → simulation pipeline at small sizes, with golden values.

use hexamesh_repro::graph::metrics;
use hexamesh_repro::hexamesh::arrangement::{Arrangement, ArrangementKind, Regularity};
use hexamesh_repro::hexamesh::eval::{self, evaluate_analytic, link_budget, EvalParams};
use hexamesh_repro::hexamesh::proxies;
use hexamesh_repro::nocsim::{measure, MeasureConfig, SimConfig};
use hexamesh_repro::partition::BisectionConfig;

fn quick_params() -> EvalParams {
    let mut p = EvalParams::quick();
    p.sim.vcs = 4;
    p.sim.buffer_depth = 4;
    p.measure.warmup_cycles = 800;
    p.measure.measure_cycles = 1_600;
    p.measure.rate_resolution = 0.05;
    p
}

#[test]
fn golden_link_budget_n16_grid() {
    // Hand-computed §VI-B numbers for a 16-chiplet grid (see eval.rs docs).
    let a = Arrangement::build(ArrangementKind::Grid, 16).unwrap();
    let budget = link_budget(&a, &EvalParams::paper_defaults()).unwrap();
    assert_eq!(budget.estimate.wires, 333);
    assert_eq!(budget.estimate.data_wires, 321);
    assert_eq!(budget.estimate.bandwidth_mbps, 5_136_000);
}

#[test]
fn golden_zero_load_latency_two_chiplets() {
    // N = 2 grid: routers 1 hop apart, 4 endpoints. Of the 12 ordered
    // endpoint pairs, 4 are same-router (0 hops) and 8 cross the link
    // (1 hop): avg hops = 8/12 = 2/3.
    // latency = 2·1 + 3 + (4−1) + (2/3)·(3+27) = 8 + 20 = 28.
    let a = Arrangement::build(ArrangementKind::Grid, 2).unwrap();
    let config = SimConfig::paper_defaults();
    let zero_load = measure::zero_load_latency(a.graph(), &config).unwrap();
    assert!((zero_load - 28.0).abs() < 1e-9, "zero-load {zero_load}");
}

#[test]
fn full_pipeline_hexamesh_seven() {
    let params = quick_params();
    let a = Arrangement::build(ArrangementKind::HexaMesh, 7).unwrap();
    let r = eval::evaluate(&a, &params).unwrap();
    assert_eq!(r.n, 7);
    assert_eq!(r.diameter, 2);
    // Hand-optimised sectors at N ≤ 7: A_C = 800/7, max degree 6.
    let expected_sector = 0.6 * (800.0 / 7.0) / 6.0;
    assert!((r.link_sector_area_mm2 - expected_sector).abs() < 1e-9);
    assert!(r.saturation_fraction > 0.0);
    assert!(r.saturation_throughput_tbps > 0.0);
    assert!(r.zero_load_latency_cycles > 0.0);
}

#[test]
fn honeycomb_brickwall_equivalence_across_regularities() {
    // EXP-A1: the §IV-A claim, across all three regularity classes.
    for (n, regularity) in [
        (16usize, Regularity::Regular),
        (12, Regularity::SemiRegular),
        (23, Regularity::Irregular),
    ] {
        let hc = Arrangement::build_with_regularity(ArrangementKind::Honeycomb, n, regularity)
            .unwrap();
        let bw = Arrangement::build_with_regularity(ArrangementKind::Brickwall, n, regularity)
            .unwrap();
        assert_eq!(hc.graph(), bw.graph(), "n={n} {regularity}");
    }
}

#[test]
fn grid_normalizes_to_itself_at_100_percent() {
    let params = quick_params();
    let results: Vec<_> = [9usize, 16]
        .iter()
        .map(|&n| {
            let a = Arrangement::build(ArrangementKind::Grid, n).unwrap();
            evaluate_analytic(&a, &params).unwrap()
        })
        .collect();
    for p in eval::normalize(&results, &results) {
        assert!((p.latency_pct - 100.0).abs() < 1e-9);
    }
}

#[test]
fn proxies_order_arrangements_as_the_paper_claims() {
    // For every N in a spread of counts: D_HM <= D_BW <= D_G (ties allowed
    // at small N) and the bisection order reverses.
    let config = BisectionConfig::default();
    for n in [16usize, 25, 37, 49, 61, 75, 91, 100] {
        let g = Arrangement::build(ArrangementKind::Grid, n).unwrap();
        let bw = Arrangement::build(ArrangementKind::Brickwall, n).unwrap();
        let hm = Arrangement::build(ArrangementKind::HexaMesh, n).unwrap();
        let d_g = proxies::measured_diameter(&g).unwrap();
        let d_bw = proxies::measured_diameter(&bw).unwrap();
        let d_hm = proxies::measured_diameter(&hm).unwrap();
        assert!(d_hm <= d_bw && d_bw <= d_g, "n={n}: D {d_hm} {d_bw} {d_g}");
        let b_g = proxies::paper_bisection(&g, &config);
        let b_bw = proxies::paper_bisection(&bw, &config);
        let b_hm = proxies::paper_bisection(&hm, &config);
        assert!(b_hm >= b_bw && b_bw >= b_g, "n={n}: B {b_hm} {b_bw} {b_g}");
    }
}

#[test]
fn perimeter_io_preserves_compute_ici() {
    // Fig. 2: adding I/O chiplets on the perimeter must not change the
    // compute-chiplet interconnect.
    use hexamesh_repro::layout::perimeter::surround_with_io;
    let a = Arrangement::build(ArrangementKind::HexaMesh, 19).unwrap();
    let placement = a.placement().expect("rect arrangement");
    let before = placement.compute_adjacency_graph();
    let ringed = surround_with_io(placement, 4, 2).unwrap();
    assert_eq!(ringed.compute_adjacency_graph(), before);
    assert!(ringed.len() > placement.len(), "I/O chiplets were added");
}

#[test]
fn simulated_latency_matches_analytic_zero_load_at_light_load() {
    let a = Arrangement::build(ArrangementKind::Brickwall, 9).unwrap();
    let config = SimConfig {
        injection_rate: 0.01,
        vcs: 4,
        buffer_depth: 4,
        ..SimConfig::paper_defaults()
    };
    let analytic = measure::zero_load_latency(a.graph(), &config).unwrap();
    let mut schedule = MeasureConfig::default();
    schedule.warmup_cycles = 1_000;
    schedule.measure_cycles = 20_000;
    let point = measure::run_load_point(a.graph(), &config, &schedule).unwrap();
    let simulated = point.stats.avg_packet_latency.expect("packets measured");
    let rel_err = (simulated - analytic).abs() / analytic;
    assert!(rel_err < 0.10, "analytic {analytic:.1} vs simulated {simulated:.1}");
    assert!(!point.saturated);
}

#[test]
fn arrangements_have_planar_ici_graphs() {
    // Geometric contact graphs must satisfy e <= 3v - 6; this also keeps
    // the average-degree claim of §IV-A honest.
    for kind in ArrangementKind::ALL {
        for n in [10usize, 37, 64, 100] {
            let a = Arrangement::build(kind, n).unwrap();
            assert!(metrics::satisfies_planar_edge_bound(a.graph()), "{kind} n={n}");
        }
    }
}
