//! Minimal stand-in for the `criterion 0.5` API subset this workspace uses
//! (offline build; see `vendor/README.md`): benchmark groups with
//! `bench_function`, `iter`, and `iter_batched`, timed with a simple
//! wall-clock median. Good enough for regression spot checks; swap in the
//! real criterion for publication-grade statistics.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted for API
/// compatibility; this implementation always measures one input at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, samples: 10 }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f` and prints the median sample.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                times.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        times.sort_by(f64::total_cmp);
        let median = times.get(times.len() / 2).copied().unwrap_or(f64::NAN);
        eprintln!("  {id}: {median:.0} ns/iter (median of {} samples)", times.len());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }

    /// Times `routine` on inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Declares a function running the given benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
