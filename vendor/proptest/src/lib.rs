//! Minimal stand-in for the `proptest 1` API subset this workspace uses
//! (offline build; see `vendor/README.md`).
//!
//! Provides random *generation* of test cases — ranges, tuples,
//! collections, `prop_map`/`prop_flat_map` — plus the `proptest!` and
//! `prop_assert*` macros. There is no shrinking: a failing case panics with
//! the assertion message and the case number, which is enough to reproduce
//! (generation is deterministic per case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block configuration: the number of generated cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Size specification for collection strategies: a fixed length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (duplicates may produce slightly smaller sets, never below
    /// one element when `size` excludes zero and the domain allows it).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of values from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.min..self.size.max);
            let mut out = BTreeSet::new();
            // Cap attempts: small domains may not hold `target` distinct
            // values.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            if out.len() < self.size.min && self.size.min > 0 {
                // Last resort to respect a non-zero minimum.
                while out.len() < self.size.min {
                    out.insert(self.element.generate(rng));
                }
            }
            out
        }
    }
}

/// Why a test-case body ended early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject,
}

/// Builds the deterministic RNG for one test case.
#[doc(hidden)]
#[must_use]
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5EED_CA5E ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Alias so `prop::collection::vec(...)` style paths work.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::case_rng(case);
                    $(let $pat = $crate::Strategy::generate(
                        &($strat),
                        &mut proptest_case_rng,
                    );)*
                    let _ = &mut proptest_case_rng;
                    // The body runs in a closure returning `Result` so that
                    // `return Ok(())` and `prop_assume!` (an early `Err`)
                    // work as they do in the real proptest.
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
