//! Minimal stand-in for the `rand 0.8` API subset this workspace uses
//! (offline build; see `vendor/README.md`): a deterministic `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is splitmix64 — statistically solid for simulation
//! workloads and fully reproducible given a seed, which is the only
//! property the simulator and partitioner rely on. It is *not* the
//! cryptographic ChaCha12 of the real `rand::rngs::StdRng`, so absolute
//! random streams differ from upstream builds (all results in this repo
//! are defined relative to this generator).

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One splitmix64 step: advances `state` and returns the mixed output.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warmup step decorrelates small consecutive seeds.
            let mut state = seed;
            let _ = splitmix64(&mut state);
            Self { state }
        }
    }
}

/// Scalars [`Rng::gen_range`] can sample uniformly (the stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Panics when the range is empty.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`. Panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly from by [`Rng::gen_range`].
///
/// Single blanket impls per range shape keep integer-literal inference
/// working the way it does with the real rand crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling of slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
