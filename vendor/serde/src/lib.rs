//! Minimal stand-in for the serde facade (offline build; see
//! `vendor/README.md`): the derive macros plus marker traits, so that
//! `use serde::{Deserialize, Serialize}` and `#[derive(...)]` compile.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
