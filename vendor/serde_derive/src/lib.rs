//! No-op stand-ins for serde's derive macros (offline build; see
//! `vendor/README.md`). Nothing in this workspace serialises through the
//! serde data model, so deriving nothing is sufficient for the code to
//! compile unchanged against the real serde later.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
